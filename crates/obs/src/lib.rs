//! `pulse-obs`: structured observability for the Pulse runtime.
//!
//! Dependency-light by design (the build environment is offline): atomic
//! counters, fixed power-of-two-bucket latency histograms, RAII spans, and
//! a ring-buffer event log, all reachable through a process-global
//! [`MetricsRegistry`] keyed by hierarchical dotted names
//! (`runtime.violations`, `cops.join.systems_solved`, `validate.invert_ns`).
//!
//! Design constraints, in order:
//! 1. **The fast path stays fast.** Recording is relaxed atomics only;
//!    spans branch on a global enabled flag, so a disabled span costs one
//!    atomic load. Hot loops cache [`Counter`]/[`Histogram`] handles and
//!    never touch the name maps.
//! 2. **Everything exports.** [`MetricsRegistry::snapshot`] freezes all
//!    metrics into a serializable [`Snapshot`] with JSON, table, and
//!    delta/rate views.
//!
//! ```
//! pulse_obs::set_enabled(true);
//! let hits = pulse_obs::global().counter("demo.hits");
//! {
//!     let _span = pulse_obs::span!("demo.work");
//!     hits.inc();
//! }
//! let snap = pulse_obs::global().snapshot();
//! assert_eq!(snap.counter("demo.hits"), Some(1));
//! assert!(snap.histogram("demo.work").unwrap().count >= 1);
//! pulse_obs::set_enabled(false);
//! ```

pub mod audit;
pub mod export;
pub mod health;
pub mod prof;
mod registry;
pub mod serve;
mod snapshot;
mod span;
pub mod timeseries;
pub mod trace;

pub use audit::{AuditLedger, BreachRecord, KeyLedger};
pub use export::chrome_trace;
pub use health::{HealthEvaluator, HealthReport, Rule, Signal, Signals};
pub use prof::{
    prof_enabled, set_prof_enabled, Phase, PhaseBreakdown, PhaseCost, PhaseTable, PHASE_COUNT,
};
pub use registry::{
    bucket_index, bucket_upper, labeled, Counter, HistTimer, Histogram, KeyedCounter,
    MetricsRegistry, BUCKETS,
};
pub use serve::{serve, AuditFn, ExplainFn, Routes, ServeHandle, TraceFn};
pub use snapshot::{HistogramSnapshot, KeyedSnapshot, Snapshot};
pub use span::{Event, EventLog, SpanGuard};
pub use timeseries::{Point, TimeSeriesStore, TsConfig};
pub use trace::{
    explain_from_events, set_trace_enabled, trace_enabled, ExplainReport, SolveTrace, TraceEvent,
    TraceKind, Tracer,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns observability on/off process-wide. Counters and histograms can
/// always be written through their handles; this flag gates the *wiring*
/// (spans and instrumented call sites check it before recording).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether instrumentation is currently on (one relaxed load).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-global registry all `span!` timings land in.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// The process-global span event log (retention off until
/// [`EventLog::set_capacity`] is called).
pub fn events() -> &'static EventLog {
    static EVENTS: OnceLock<EventLog> = OnceLock::new();
    EVENTS.get_or_init(EventLog::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared() {
        global().counter("obs.test.shared").inc();
        assert!(global().snapshot().counter("obs.test.shared").unwrap() >= 1);
    }

    #[test]
    fn enable_flag_roundtrip() {
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
