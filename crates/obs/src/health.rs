//! Health signals and a dependency-free rule-based alert evaluator.
//!
//! The evaluator owns no wiring into the runtime: it reads whatever the
//! runtime already exports into a [`Snapshot`] (queue-depth gauges,
//! validation counters, per-shard tuple counters), derives a handful of
//! [`Signals`], and runs them through threshold + sustained-duration
//! [`Rule`]s. Every evaluation produces a [`HealthReport`] — the
//! machine-parseable verdict `/health` serves — and rule transitions
//! (fire/clear) are appended to the ring-buffer event log as
//! `health.fire.<rule>` / `health.clear.<rule>` events.
//!
//! "Sustained-duration" is measured in consecutive evaluations rather than
//! wall seconds: the evaluator is driven by whoever polls it (the HTTP
//! handler, a test loop), so `sustain` evaluations above threshold ≈
//! `sustain × poll-interval` of sustained breach, without the evaluator
//! needing its own clock or thread.

use crate::snapshot::Snapshot;
use serde::Serialize;
use std::time::Instant;

/// A derived signal a [`Rule`] can watch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Signal {
    /// Deepest bounded-channel occupancy across shards
    /// (`shard.queue_depth{shard=…}` family max) — saturation means the
    /// router is blocking on backpressure.
    QueueDepthMax,
    /// Violations per validation check since the previous evaluation
    /// (0..=1); high means predictions are systematically breaking.
    ViolationRatio,
    /// Busiest shard's tuple intake relative to the mean since the
    /// previous evaluation (1 = perfectly balanced).
    ShardSkew,
    /// Violations per second since the previous evaluation.
    ViolationRate,
    /// Strict ε-guarantee violations the live auditor caught since the
    /// previous evaluation (`audit.breaches` family sum delta).
    GuaranteeBreaches,
}

impl Signal {
    pub fn name(&self) -> &'static str {
        match self {
            Signal::QueueDepthMax => "queue_depth_max",
            Signal::ViolationRatio => "violation_ratio",
            Signal::ShardSkew => "shard_skew",
            Signal::ViolationRate => "violation_rate",
            Signal::GuaranteeBreaches => "guarantee_breaches",
        }
    }
}

/// The signal values of one evaluation.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Signals {
    pub queue_depth_max: u64,
    pub queue_depth_total: u64,
    pub violation_ratio: f64,
    pub violation_rate: f64,
    pub shard_skew: f64,
    pub guarantee_breaches: u64,
}

impl Signals {
    /// Derives signals from a cumulative snapshot, a delta since the last
    /// evaluation, and the elapsed seconds the delta spans.
    pub fn derive(current: &Snapshot, delta: &Snapshot, secs: f64) -> Signals {
        // Queue depths are gauges: read the *current* values, not deltas.
        let queue_depth_max = current.family_max("shard.queue_depth");
        let queue_depth_total = current.family_sum("shard.queue_depth");

        let checks = delta.family_sum("validate.checks");
        let violations = delta.family_sum("validate.violations");
        let violation_ratio = if checks == 0 { 0.0 } else { violations as f64 / checks as f64 };
        let violation_rate = if secs > 0.0 { violations as f64 / secs } else { 0.0 };

        // Skew over per-shard intake deltas; the unlabeled single-threaded
        // series has no `{shard=…}` variant and reports 1 (balanced).
        let per_shard: Vec<u64> = delta
            .family_values("runtime.tuples_in")
            .into_iter()
            .filter(|(name, _)| name.contains('{'))
            .map(|(_, v)| v)
            .collect();
        let shard_skew = if per_shard.len() < 2 {
            1.0
        } else {
            let sum: u64 = per_shard.iter().sum();
            let mean = sum as f64 / per_shard.len() as f64;
            if mean <= 0.0 {
                1.0
            } else {
                *per_shard.iter().max().unwrap() as f64 / mean
            }
        };

        // New strict audit violations this window (counters only grow).
        let guarantee_breaches = delta.family_sum("audit.breaches");

        Signals {
            queue_depth_max,
            queue_depth_total,
            violation_ratio,
            violation_rate,
            shard_skew,
            guarantee_breaches,
        }
    }

    fn value(&self, signal: Signal) -> f64 {
        match signal {
            Signal::QueueDepthMax => self.queue_depth_max as f64,
            Signal::ViolationRatio => self.violation_ratio,
            Signal::ShardSkew => self.shard_skew,
            Signal::ViolationRate => self.violation_rate,
            Signal::GuaranteeBreaches => self.guarantee_breaches as f64,
        }
    }
}

/// Threshold + sustained-duration alert rule: fires once its signal has
/// been `>= threshold` for `sustain` consecutive evaluations, clears on
/// the first evaluation back below.
#[derive(Debug, Clone)]
pub struct Rule {
    pub name: String,
    pub signal: Signal,
    pub threshold: f64,
    /// Consecutive breaching evaluations required to fire (min 1).
    pub sustain: u32,
}

impl Rule {
    pub fn new(name: &str, signal: Signal, threshold: f64, sustain: u32) -> Rule {
        Rule { name: name.to_string(), signal, threshold, sustain: sustain.max(1) }
    }
}

/// The default rule set `/health` evaluates when the embedding program
/// doesn't install its own.
pub fn default_rules() -> Vec<Rule> {
    vec![
        // The sharded runtime's bounded channels hold 4 batches; a shard
        // pinned at that depth across two polls means the router is
        // blocked on backpressure, not just momentarily busy.
        Rule::new("queue_saturated", Signal::QueueDepthMax, 4.0, 2),
        // Most checks violating means the models have stopped predicting;
        // the runtime is degraded to per-tuple solving.
        Rule::new("violation_storm", Signal::ViolationRatio, 0.5, 3),
        // One shard taking 3× its fair share of intake defeats scaling.
        Rule::new("shard_skew", Signal::ShardSkew, 3.0, 3),
        // Any audited answer straying past its promised ε in two
        // consecutive windows: the headline guarantee is broken, which is
        // strictly worse than being slow.
        Rule::new("guarantee_breach", Signal::GuaranteeBreaches, 1.0, 2),
    ]
}

/// One rule's state within a [`HealthReport`].
#[derive(Debug, Clone, Serialize)]
pub struct RuleState {
    pub rule: String,
    pub signal: &'static str,
    pub threshold: f64,
    pub value: f64,
    /// Breaching right now (this evaluation).
    pub breached: bool,
    /// Breach sustained long enough — the rule is alerting.
    pub firing: bool,
    pub streak: u32,
}

/// The machine-parseable verdict of one evaluation (the `/health` body).
#[derive(Debug, Clone, Serialize)]
pub struct HealthReport {
    /// `"ok"` or `"degraded"` (any rule firing).
    pub verdict: String,
    pub firing: Vec<String>,
    pub signals: Signals,
    pub rules: Vec<RuleState>,
}

impl HealthReport {
    pub fn ok(&self) -> bool {
        self.verdict == "ok"
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }
}

/// Stateful rule evaluator: feed it snapshots, get verdicts. Keeps the
/// previous snapshot for delta-based signals and a per-rule breach streak
/// for sustained-duration semantics.
pub struct HealthEvaluator {
    rules: Vec<Rule>,
    streaks: Vec<u32>,
    firing: Vec<bool>,
    last: Option<Snapshot>,
    last_at: Option<Instant>,
}

impl HealthEvaluator {
    pub fn new(rules: Vec<Rule>) -> HealthEvaluator {
        let n = rules.len();
        HealthEvaluator {
            rules,
            streaks: vec![0; n],
            firing: vec![false; n],
            last: None,
            last_at: None,
        }
    }

    /// Evaluator over [`default_rules`].
    pub fn with_defaults() -> HealthEvaluator {
        HealthEvaluator::new(default_rules())
    }

    /// Evaluates the global registry, timing the delta window itself.
    pub fn evaluate_global(&mut self) -> HealthReport {
        let secs = self.last_at.map(|t| t.elapsed().as_secs_f64()).unwrap_or(0.0);
        self.last_at = Some(Instant::now());
        self.evaluate(&crate::global().snapshot(), secs)
    }

    /// Evaluates one snapshot; `secs` is the wall time since the previous
    /// evaluation (for rate signals). Rule transitions are pushed to the
    /// event log as `health.fire.<rule>` / `health.clear.<rule>`, carrying
    /// the signal value (rounded) in the event's value slot.
    pub fn evaluate(&mut self, snap: &Snapshot, secs: f64) -> HealthReport {
        let delta = match &self.last {
            Some(prev) => snap.delta(prev),
            None => snap.clone(),
        };
        let signals = Signals::derive(snap, &delta, secs);
        self.last = Some(snap.clone());

        let mut rules = Vec::with_capacity(self.rules.len());
        let mut firing_names = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            let value = signals.value(rule.signal);
            let breached = value >= rule.threshold;
            self.streaks[i] = if breached { self.streaks[i] + 1 } else { 0 };
            let firing = self.streaks[i] >= rule.sustain;
            if firing != self.firing[i] {
                let kind = if firing { "fire" } else { "clear" };
                crate::events().push(format!("health.{kind}.{}", rule.name), None, value as u64);
            }
            self.firing[i] = firing;
            if firing {
                firing_names.push(rule.name.clone());
            }
            rules.push(RuleState {
                rule: rule.name.clone(),
                signal: rule.signal.name(),
                threshold: rule.threshold,
                value,
                breached,
                firing,
                streak: self.streaks[i],
            });
        }
        let verdict = if firing_names.is_empty() { "ok" } else { "degraded" };
        HealthReport { verdict: verdict.to_string(), firing: firing_names, signals, rules }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn snap_with(depth: u64, checks: u64, violations: u64) -> Snapshot {
        let reg = MetricsRegistry::new();
        reg.counter(&crate::labeled("shard.queue_depth", &[("shard", "0")])).set(depth);
        reg.counter("validate.checks").set(checks);
        reg.counter("validate.violations").set(violations);
        reg.snapshot()
    }

    #[test]
    fn sustained_threshold_fires_then_clears() {
        let mut ev =
            HealthEvaluator::new(vec![Rule::new("queue_saturated", Signal::QueueDepthMax, 4.0, 2)]);
        let r1 = ev.evaluate(&snap_with(4, 0, 0), 1.0);
        assert!(r1.ok(), "breached once, sustain=2 → not yet firing");
        assert!(r1.rules[0].breached && !r1.rules[0].firing);
        let r2 = ev.evaluate(&snap_with(4, 0, 0), 1.0);
        assert_eq!(r2.verdict, "degraded");
        assert_eq!(r2.firing, vec!["queue_saturated".to_string()]);
        assert!(r2.rules[0].firing && r2.rules[0].streak == 2);
        let r3 = ev.evaluate(&snap_with(0, 0, 0), 1.0);
        assert!(r3.ok(), "drops below threshold → clears immediately");
        assert_eq!(r3.rules[0].streak, 0);
    }

    #[test]
    fn violation_ratio_uses_deltas_between_evaluations() {
        let mut ev = HealthEvaluator::new(vec![Rule::new(
            "violation_storm",
            Signal::ViolationRatio,
            0.5,
            1,
        )]);
        // Quiet history: 1000 checks, 10 violations.
        let r1 = ev.evaluate(&snap_with(0, 1000, 10), 1.0);
        assert!(r1.ok());
        // Next window: +100 checks, +90 violations → ratio 0.9 even though
        // the cumulative ratio is still under 10%.
        let r2 = ev.evaluate(&snap_with(0, 1100, 100), 1.0);
        assert_eq!(r2.verdict, "degraded");
        assert!((r2.signals.violation_ratio - 0.9).abs() < 1e-12);
        assert!((r2.signals.violation_rate - 90.0).abs() < 1e-9);
    }

    #[test]
    fn shard_skew_from_labeled_intake() {
        let reg = MetricsRegistry::new();
        reg.counter(&crate::labeled("runtime.tuples_in", &[("shard", "0")])).set(300);
        reg.counter(&crate::labeled("runtime.tuples_in", &[("shard", "1")])).set(100);
        let mut ev = HealthEvaluator::new(vec![Rule::new("skew", Signal::ShardSkew, 1.4, 1)]);
        let r = ev.evaluate(&reg.snapshot(), 1.0);
        // max 300 / mean 200 = 1.5
        assert!((r.signals.shard_skew - 1.5).abs() < 1e-12);
        assert_eq!(r.verdict, "degraded");
    }

    #[test]
    fn transitions_log_alert_events() {
        crate::events().set_capacity(64);
        let mut ev =
            HealthEvaluator::new(vec![Rule::new("evtest_sat", Signal::QueueDepthMax, 4.0, 1)]);
        ev.evaluate(&snap_with(5, 0, 0), 1.0);
        ev.evaluate(&snap_with(0, 0, 0), 1.0);
        let events = crate::events().drain();
        assert!(events.iter().any(|e| e.name == "health.fire.evtest_sat" && e.ns == 5));
        assert!(events.iter().any(|e| e.name == "health.clear.evtest_sat"));
        crate::events().set_capacity(0);
    }

    #[test]
    fn report_json_is_machine_parseable() {
        let mut ev = HealthEvaluator::with_defaults();
        let json = ev.evaluate(&snap_with(0, 100, 1), 1.0).to_json();
        assert!(json.contains("\"verdict\": \"ok\""), "{json}");
        assert!(json.contains("\"queue_saturated\""), "{json}");
        assert!(json.contains("\"signals\""), "{json}");
    }
}
