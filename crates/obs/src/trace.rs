//! The flight recorder: typed, causally-linked runtime events.
//!
//! Counters say *how often* the solver ran; the recorder says *why*. Every
//! step of the predictive loop — a tuple arriving, its validation verdict,
//! the re-model, the equation-system solve, each emitted output range —
//! lands in a [`Tracer`] as a [`TraceEvent`] carrying a process-wide
//! monotonic id and the id of the event that caused it. Walking the parent
//! chain backwards from a solve reconstructs the full provenance of that
//! solve (input arrival → validation decision → re-model → solve → output
//! ranges), which [`explain`](Tracer::explain) packages as a serializable
//! [`ExplainReport`].
//!
//! Concurrency model: each ring is **single-writer by ownership** — a
//! `Tracer` belongs to exactly one runtime (one shard) and is only ever
//! touched from that runtime's driving thread, so recording is plain memory
//! writes with no locks or atomics beyond the global enable flag and id
//! counter. Cross-thread queries (the `/explain` endpoint against a sharded
//! runtime) are routed *to* the owning thread over its work channel rather
//! than reading the ring remotely.
//!
//! Cost model: recording is gated on [`Tracer::on`] — one relaxed load of
//! the global flag plus a capacity check. With tracing off the per-tuple
//! cost is that single branch; the existing `obs_overhead` suppressed-path
//! gate covers it.

use serde::{Serialize, Value};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// JSON object from borrowed field pairs (hand-written `Serialize` impls —
/// the vendored derive cannot handle data-carrying enums).
fn value_of_pairs(pairs: &[(&str, Value)]) -> Value {
    Value::Object(pairs.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect())
}

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
/// Process-wide monotonic event ids; 0 is reserved for "no parent".
static NEXT_EVENT_ID: AtomicU64 = AtomicU64::new(1);

/// Turns the flight recorder on/off process-wide. Independent from
/// [`crate::set_enabled`]: metrics can run with tracing off (the common
/// production posture), and instrumented sites check both.
pub fn set_trace_enabled(on: bool) {
    TRACE_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether event recording is currently on (one relaxed load).
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

fn next_event_id() -> u64 {
    NEXT_EVENT_ID.fetch_add(1, Ordering::Relaxed)
}

/// What happened. Field conventions: `slack` is the observed deviation,
/// `bound` the allowance it was checked against; segment ids are the raw
/// `SegmentId` words; `ns` is elapsed wall time.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// A tuple arrived at a source stream.
    SegmentArrival { source: u32 },
    /// The validator's verdict for the arrival: observed deviation vs the
    /// allowance in force. An unseen key (no installed mode) reports an
    /// infinite deviation — "no previously known results" always solves.
    ValidationOutcome { slack: f64, bound: f64, ok: bool },
    /// A violation re-modeled the key into a fresh predictive segment.
    Remodel { seg: u64 },
    /// The plan-wide solve began (`system_size` = operator count).
    SolveStart { system_size: u32 },
    /// The plan-wide solve finished: `roots` result segments, `iters`
    /// equation rows ground through, in `ns` wall nanoseconds.
    SolveEnd { system_size: u32, roots: u32, iters: u64, ns: u64 },
    /// One operator's equation-system work inside a solve (child of the
    /// enclosing `SolveStart` scope).
    OpSolve { op: &'static str, rows: u64, outputs: u32 },
    /// A result segment left the plan: its id, output range, and the source
    /// segment ids lineage chains it back to.
    OutputEmit { seg: u64, lo: f64, hi: f64, sources: Vec<u64> },
    /// The live auditor caught a strict ε-guarantee violation: observed
    /// deviation from the discrete reference vs the promised allowance.
    /// Chained to the `OutputEmit` whose answer it indicts.
    GuaranteeBreach { observed: f64, expected: f64, allowance: f64 },
}

impl TraceKind {
    /// Stable event-type name (the `type` field of the JSON encoding).
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::SegmentArrival { .. } => "SegmentArrival",
            TraceKind::ValidationOutcome { .. } => "ValidationOutcome",
            TraceKind::Remodel { .. } => "Remodel",
            TraceKind::SolveStart { .. } => "SolveStart",
            TraceKind::SolveEnd { .. } => "SolveEnd",
            TraceKind::OpSolve { .. } => "OpSolve",
            TraceKind::OutputEmit { .. } => "OutputEmit",
            TraceKind::GuaranteeBreach { .. } => "GuaranteeBreach",
        }
    }
}

// The vendored derive handles unit-variant enums only, so the data-carrying
// kinds serialize by hand as tagged objects.
impl Serialize for TraceKind {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = vec![("type".into(), self.name().to_value())];
        match self {
            TraceKind::SegmentArrival { source } => {
                fields.push(("source".into(), source.to_value()));
            }
            TraceKind::ValidationOutcome { slack, bound, ok } => {
                fields.push(("slack".into(), slack.to_value()));
                fields.push(("bound".into(), bound.to_value()));
                fields.push(("ok".into(), ok.to_value()));
            }
            TraceKind::Remodel { seg } => fields.push(("seg".into(), seg.to_value())),
            TraceKind::SolveStart { system_size } => {
                fields.push(("system_size".into(), system_size.to_value()));
            }
            TraceKind::SolveEnd { system_size, roots, iters, ns } => {
                fields.push(("system_size".into(), system_size.to_value()));
                fields.push(("roots".into(), roots.to_value()));
                fields.push(("iters".into(), iters.to_value()));
                fields.push(("ns".into(), ns.to_value()));
            }
            TraceKind::OpSolve { op, rows, outputs } => {
                fields.push(("op".into(), op.to_value()));
                fields.push(("rows".into(), rows.to_value()));
                fields.push(("outputs".into(), outputs.to_value()));
            }
            TraceKind::OutputEmit { seg, lo, hi, sources } => {
                fields.push(("seg".into(), seg.to_value()));
                fields.push(("lo".into(), lo.to_value()));
                fields.push(("hi".into(), hi.to_value()));
                fields.push(("sources".into(), sources.to_value()));
            }
            TraceKind::GuaranteeBreach { observed, expected, allowance } => {
                fields.push(("observed".into(), observed.to_value()));
                fields.push(("expected".into(), expected.to_value()));
                fields.push(("allowance".into(), allowance.to_value()));
            }
        }
        Value::Object(fields)
    }
}

/// One recorded event. `parent` is the id of the event that caused this one
/// (0 = root); `key` is the stream key the event concerns; `t` is stream
/// time (the tuple/segment timestamp, not wall time).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub id: u64,
    pub parent: u64,
    pub key: u64,
    pub t: f64,
    pub kind: TraceKind,
}

impl Serialize for TraceEvent {
    fn to_value(&self) -> Value {
        value_of_pairs(&[
            ("id", self.id.to_value()),
            ("parent", self.parent.to_value()),
            ("key", self.key.to_value()),
            ("t", self.t.to_value()),
            ("kind", self.kind.to_value()),
        ])
    }
}

/// A fixed-capacity event ring owned by one runtime (one shard).
///
/// Writes are plain memory stores — the owning thread is the only writer
/// and the only reader, so the ring needs no synchronization at all (see
/// the module docs for how cross-thread queries reach it). When full, the
/// oldest events fall off; a ring of capacity 0 ([`Tracer::off`]) records
/// nothing and makes every `emit` a no-op returning id 0.
#[derive(Debug)]
pub struct Tracer {
    ring: VecDeque<TraceEvent>,
    cap: usize,
    /// Current causal scope: events emitted via [`Self::emit_scoped`]
    /// (operator-level events inside a solve) parent onto this id.
    scope: u64,
    /// Violation-path phase attribution (see [`crate::prof`]). Rides on the
    /// tracer because the tracer already has the right ownership story:
    /// exactly one per runtime, touched only from its driving thread.
    phases: crate::prof::PhaseTable,
}

impl Tracer {
    /// A recording tracer holding at most `cap` events.
    pub fn ring(cap: usize) -> Self {
        Tracer { ring: VecDeque::new(), cap, scope: 0, phases: Default::default() }
    }

    /// The no-op tracer: never records, never allocates.
    pub fn off() -> Self {
        Tracer::ring(0)
    }

    /// Whether emits currently record (capacity present *and* the global
    /// flag is on). Callers gate event construction on this so the off
    /// path never builds a `TraceKind`.
    #[inline]
    pub fn on(&self) -> bool {
        self.cap != 0 && trace_enabled()
    }

    /// Records an event caused by `parent`, returning its id (0 when off).
    pub fn emit(&mut self, parent: u64, key: u64, t: f64, kind: TraceKind) -> u64 {
        if !self.on() {
            return 0;
        }
        let id = next_event_id();
        if self.ring.len() >= self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(TraceEvent { id, parent, key, t, kind });
        id
    }

    /// Records an event parented onto the current scope (operators inside a
    /// solve attach to the enclosing `SolveStart` this way).
    pub fn emit_scoped(&mut self, key: u64, t: f64, kind: TraceKind) -> u64 {
        let parent = self.scope;
        self.emit(parent, key, t, kind)
    }

    /// Sets the causal scope for subsequent [`Self::emit_scoped`] calls.
    pub fn set_scope(&mut self, id: u64) {
        self.scope = id;
    }

    /// The accumulated violation-path phase table.
    pub fn phases(&self) -> &crate::prof::PhaseTable {
        &self.phases
    }

    /// Mutable access for direct recording (e.g. piggybacking an
    /// already-measured duration instead of taking fresh timestamps).
    pub fn phases_mut(&mut self) -> &mut crate::prof::PhaseTable {
        &mut self.phases
    }

    /// Closes a phase measurement opened with [`crate::prof::start`]:
    /// attributes the elapsed time to `phase`. No-op when profiling was off
    /// at the open (`t0 == None`).
    #[inline]
    pub fn prof(&mut self, t0: Option<std::time::Instant>, phase: crate::prof::Phase) {
        self.phases.record_since(t0, phase);
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Sums `OpSolve` rows/outputs recorded under `scope` (the enclosing
    /// solve aggregates its operators' work into `SolveEnd.iters`).
    pub fn scope_op_totals(&self, scope: u64) -> (u64, u32) {
        let mut rows = 0;
        let mut outputs = 0;
        for e in self.ring.iter().rev() {
            if e.id <= scope {
                break;
            }
            if e.parent == scope {
                if let TraceKind::OpSolve { rows: r, outputs: o, .. } = &e.kind {
                    rows += r;
                    outputs += o;
                }
            }
        }
        (rows, outputs)
    }

    /// Walks the recorder backwards for `key` over stream-time `[t0, t1]`:
    /// every retained solve whose trigger fell in the range or whose output
    /// ranges overlap it, each unwound to its causal chain.
    pub fn explain(&self, key: u64, t0: f64, t1: f64) -> ExplainReport {
        explain_from_events(self.ring.iter(), key, t0, t1)
    }
}

/// One solve's full causal chain, newest link first in discovery order:
/// the `SolveEnd` anchor, then each ancestor that was still retained.
#[derive(Debug, Clone)]
pub struct SolveTrace {
    pub solve_end: TraceEvent,
    pub solve_start: Option<TraceEvent>,
    pub remodel: Option<TraceEvent>,
    pub validation: Option<TraceEvent>,
    pub arrival: Option<TraceEvent>,
    /// Per-operator work inside the solve (children of `solve_start`).
    pub op_solves: Vec<TraceEvent>,
    /// Result ranges the solve produced (children of `solve_end`).
    pub outputs: Vec<TraceEvent>,
}

impl Serialize for SolveTrace {
    fn to_value(&self) -> Value {
        value_of_pairs(&[
            ("solve_end", self.solve_end.to_value()),
            ("solve_start", self.solve_start.to_value()),
            ("remodel", self.remodel.to_value()),
            ("validation", self.validation.to_value()),
            ("arrival", self.arrival.to_value()),
            ("op_solves", self.op_solves.to_value()),
            ("outputs", self.outputs.to_value()),
        ])
    }
}

/// The serializable answer to "why did this key's results change here?".
#[derive(Debug, Clone)]
pub struct ExplainReport {
    pub key: u64,
    pub t0: f64,
    pub t1: f64,
    /// Matching solves, oldest first.
    pub solves: Vec<SolveTrace>,
}

impl ExplainReport {
    /// Pretty JSON (the `/explain` endpoint's payload).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("explain serialization is infallible")
    }
}

impl Serialize for ExplainReport {
    fn to_value(&self) -> Value {
        value_of_pairs(&[
            ("key", self.key.to_value()),
            ("t0", self.t0.to_value()),
            ("t1", self.t1.to_value()),
            ("solves", self.solves.to_value()),
        ])
    }
}

/// Pure reconstruction over any event slice (the tracer delegates here;
/// tests drive it with hand-built chains).
pub fn explain_from_events<'a, I>(events: I, key: u64, t0: f64, t1: f64) -> ExplainReport
where
    I: IntoIterator<Item = &'a TraceEvent>,
{
    let all: Vec<&TraceEvent> = events.into_iter().collect();
    let find = |id: u64| -> Option<&TraceEvent> {
        if id == 0 {
            return None;
        }
        all.iter().find(|e| e.id == id).copied()
    };
    let mut solves = Vec::new();
    for e in &all {
        let TraceKind::SolveEnd { .. } = e.kind else { continue };
        if e.key != key {
            continue;
        }
        let outputs: Vec<TraceEvent> = all
            .iter()
            .filter(|o| o.parent == e.id && matches!(o.kind, TraceKind::OutputEmit { .. }))
            .map(|o| (*o).clone())
            .collect();
        let in_range = e.t >= t0 && e.t <= t1
            || outputs.iter().any(|o| match o.kind {
                TraceKind::OutputEmit { lo, hi, .. } => lo <= t1 && hi >= t0,
                _ => false,
            });
        if !in_range {
            continue;
        }
        let solve_start = find(e.parent).filter(|s| matches!(s.kind, TraceKind::SolveStart { .. }));
        let op_solves: Vec<TraceEvent> = solve_start
            .map(|s| {
                all.iter()
                    .filter(|o| o.parent == s.id && matches!(o.kind, TraceKind::OpSolve { .. }))
                    .map(|o| (*o).clone())
                    .collect()
            })
            .unwrap_or_default();
        let remodel = solve_start
            .and_then(|s| find(s.parent))
            .filter(|r| matches!(r.kind, TraceKind::Remodel { .. }));
        let validation = remodel
            .and_then(|r| find(r.parent))
            .filter(|v| matches!(v.kind, TraceKind::ValidationOutcome { .. }));
        let arrival = validation
            .and_then(|v| find(v.parent))
            .filter(|a| matches!(a.kind, TraceKind::SegmentArrival { .. }));
        solves.push(SolveTrace {
            solve_end: (*e).clone(),
            solve_start: solve_start.cloned(),
            remodel: remodel.cloned(),
            validation: validation.cloned(),
            arrival: arrival.cloned(),
            op_solves,
            outputs,
        });
    }
    ExplainReport { key, t0, t1, solves }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The enable flag is process-global; tests that flip it hold this so
    /// parallel test threads don't see each other's toggles.
    fn flag_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn off_tracer_records_nothing() {
        let _g = flag_lock();
        let mut tr = Tracer::off();
        set_trace_enabled(true);
        let id = tr.emit(0, 1, 0.0, TraceKind::SegmentArrival { source: 0 });
        assert_eq!(id, 0);
        assert!(tr.is_empty());
    }

    #[test]
    fn disabled_flag_gates_recording() {
        let _g = flag_lock();
        let mut tr = Tracer::ring(8);
        set_trace_enabled(false);
        assert!(!tr.on());
        assert_eq!(tr.emit(0, 1, 0.0, TraceKind::SegmentArrival { source: 0 }), 0);
        assert!(tr.is_empty());
    }

    #[test]
    fn ring_evicts_oldest_and_ids_are_monotonic() {
        let _g = flag_lock();
        set_trace_enabled(true);
        let mut tr = Tracer::ring(3);
        let ids: Vec<u64> = (0..5)
            .map(|i| tr.emit(0, i, i as f64, TraceKind::SegmentArrival { source: 0 }))
            .collect();
        set_trace_enabled(false);
        assert!(ids.windows(2).all(|w| w[1] > w[0]), "{ids:?}");
        assert_eq!(tr.len(), 3);
        // Survivors are the newest three, oldest first.
        let kept: Vec<u64> = tr.events().map(|e| e.id).collect();
        assert_eq!(kept, ids[2..]);
    }

    /// A hand-built arrival→validation→remodel→solve→output chain.
    fn chain(key: u64, t: f64, lo: f64, hi: f64, tr: &mut Tracer) -> u64 {
        let a = tr.emit(0, key, t, TraceKind::SegmentArrival { source: 0 });
        let v =
            tr.emit(a, key, t, TraceKind::ValidationOutcome { slack: 2.0, bound: 0.5, ok: false });
        let r = tr.emit(v, key, t, TraceKind::Remodel { seg: 40 });
        let s = tr.emit(r, key, t, TraceKind::SolveStart { system_size: 4 });
        tr.set_scope(s);
        tr.emit_scoped(key, t, TraceKind::OpSolve { op: "filter", rows: 3, outputs: 1 });
        tr.set_scope(0);
        let (rows, _) = tr.scope_op_totals(s);
        let e = tr.emit(
            s,
            key,
            t,
            TraceKind::SolveEnd { system_size: 4, roots: 1, iters: rows, ns: 100 },
        );
        tr.emit(e, key, lo, TraceKind::OutputEmit { seg: 41, lo, hi, sources: vec![40] });
        e
    }

    #[test]
    fn explain_reconstructs_full_chain() {
        let _g = flag_lock();
        set_trace_enabled(true);
        let mut tr = Tracer::ring(64);
        chain(7, 1.0, 1.0, 4.0, &mut tr);
        chain(9, 2.0, 2.0, 5.0, &mut tr); // other key: must not surface
        chain(7, 50.0, 50.0, 60.0, &mut tr); // out of range
        set_trace_enabled(false);

        let rep = tr.explain(7, 0.0, 10.0);
        assert_eq!(rep.solves.len(), 1);
        let s = &rep.solves[0];
        assert!(matches!(s.solve_end.kind, TraceKind::SolveEnd { iters: 3, roots: 1, .. }));
        assert!(s.solve_start.is_some());
        assert!(matches!(s.remodel.as_ref().unwrap().kind, TraceKind::Remodel { seg: 40 }));
        let val = s.validation.as_ref().unwrap();
        assert!(matches!(val.kind, TraceKind::ValidationOutcome { slack, bound, ok: false }
                if slack > bound));
        assert!(s.arrival.is_some());
        assert_eq!(s.op_solves.len(), 1);
        assert_eq!(s.outputs.len(), 1);

        // Output-range overlap alone also selects the solve.
        let rep = tr.explain(7, 3.5, 4.5);
        assert_eq!(rep.solves.len(), 1);
        // Nothing for a quiet window.
        assert!(tr.explain(7, 20.0, 30.0).solves.is_empty());
    }

    #[test]
    fn explain_serializes_to_tagged_json() {
        let _g = flag_lock();
        set_trace_enabled(true);
        let mut tr = Tracer::ring(64);
        chain(3, 1.0, 1.0, 2.0, &mut tr);
        set_trace_enabled(false);
        let json = tr.explain(3, 0.0, 10.0).to_json();
        for ty in ["SolveEnd", "ValidationOutcome", "OutputEmit", "\"sources\""] {
            assert!(json.contains(ty), "missing {ty} in {json}");
        }
    }
}
