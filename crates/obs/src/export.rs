//! Flight-recorder rings → Chrome Trace Event / Perfetto JSON.
//!
//! [`chrome_trace`] converts the per-shard [`TraceEvent`] rings into the
//! Chrome Trace Event format (the JSON array flavor wrapped in
//! `{"traceEvents": [...]}`) so any run can be dropped straight into
//! `ui.perfetto.dev` or `chrome://tracing`:
//!
//! - each shard renders as its own track (`pid` 1, `tid` = shard id,
//!   named via `thread_name` metadata events);
//! - `SolveStart`/`SolveEnd` pairs become complete (`ph: "X"`) slices
//!   whose duration is the solve's measured wall `ns`;
//! - `OutputEmit` becomes a slice spanning the emitted output range
//!   `[lo, hi]` on the stream timeline;
//! - arrivals, validation verdicts, and remodels become instants
//!   (`ph: "i"`) carrying their payload in `args`;
//! - each solve's causal chain draws flow arrows (`ph: "s"/"t"/"f"`)
//!   from the triggering `SegmentArrival` through `SolveEnd` to every
//!   `OutputEmit`, so Perfetto renders the paper's
//!   arrival → solve → output causality as clickable arrows.
//!
//! Time base: the recorder stamps **stream time** (seconds); the export
//! maps it to trace microseconds (`ts = t × 1e6`). The one deliberate
//! mix of bases: a solve slice's *duration* is its measured wall-clock
//! `ns`, scaled to µs — solves are instantaneous in stream time, and
//! rendering their real cost is the point of the visualization.

use serde::Value;

use crate::trace::{TraceEvent, TraceKind};

/// Microseconds per stream-time second on the trace timeline.
const US_PER_S: f64 = 1e6;

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Common fields of every trace record.
fn base(name: &str, ph: &str, ts: f64, tid: u32) -> Vec<(&'static str, Value)> {
    vec![
        ("name", Value::String(name.to_string())),
        ("ph", Value::String(ph.to_string())),
        ("ts", Value::F64(ts)),
        ("pid", Value::U64(1)),
        ("tid", Value::U64(tid as u64)),
    ]
}

fn push_flow(out: &mut Vec<Value>, ph: &str, flow_id: u64, ts: f64, tid: u32) {
    let mut rec = base("causal", ph, ts, tid);
    rec.push(("cat", Value::String("flow".into())));
    rec.push(("id", Value::U64(flow_id)));
    if ph == "f" {
        // Bind the arrow head to the enclosing slice, not the next one.
        rec.push(("bp", Value::String("e".into())));
    }
    out.push(obj(rec));
}

/// Renders per-shard event rings as a Chrome Trace Event JSON document.
/// `shards` yields `(shard_id, events)`; a single-threaded runtime
/// passes one entry (conventionally shard 0).
pub fn chrome_trace<'a, I>(shards: I) -> String
where
    I: IntoIterator<Item = (u32, &'a [TraceEvent])>,
{
    let mut records: Vec<Value> = Vec::new();
    for (shard, events) in shards {
        let mut meta = base("thread_name", "M", 0.0, shard);
        meta.push(("args", obj(vec![("name", Value::String(format!("shard {shard}")))])));
        records.push(obj(meta));
        shard_records(shard, events, &mut records);
    }
    let doc = obj(vec![
        ("traceEvents", Value::Array(records)),
        ("displayTimeUnit", Value::String("ms".into())),
        (
            "otherData",
            obj(vec![
                ("source", Value::String("pulse flight recorder".into())),
                (
                    "timeBase",
                    Value::String(
                        "ts is stream time in us; solve slice durations are wall-clock ns/1000"
                            .into(),
                    ),
                ),
            ]),
        ),
    ]);
    serde_json::to_string(&doc).expect("trace serialization is infallible")
}

fn shard_records(shard: u32, events: &[TraceEvent], out: &mut Vec<Value>) {
    let find = |id: u64| -> Option<&TraceEvent> {
        (id != 0).then(|| events.iter().find(|e| e.id == id)).flatten()
    };
    for e in events {
        let ts = e.t * US_PER_S;
        match &e.kind {
            TraceKind::SegmentArrival { source } => {
                let mut rec = base("SegmentArrival", "i", ts, shard);
                rec.push(("s", Value::String("t".into())));
                rec.push((
                    "args",
                    obj(vec![("key", Value::U64(e.key)), ("source", Value::U64(*source as u64))]),
                ));
                out.push(obj(rec));
            }
            TraceKind::ValidationOutcome { slack, bound, ok } => {
                let mut rec = base("ValidationOutcome", "i", ts, shard);
                rec.push(("s", Value::String("t".into())));
                rec.push((
                    "args",
                    obj(vec![
                        ("key", Value::U64(e.key)),
                        ("slack", Value::F64(*slack)),
                        ("bound", Value::F64(*bound)),
                        ("ok", Value::Bool(*ok)),
                    ]),
                ));
                out.push(obj(rec));
            }
            TraceKind::Remodel { seg } => {
                let mut rec = base("Remodel", "i", ts, shard);
                rec.push(("s", Value::String("t".into())));
                rec.push((
                    "args",
                    obj(vec![("key", Value::U64(e.key)), ("seg", Value::U64(*seg))]),
                ));
                out.push(obj(rec));
            }
            TraceKind::SolveEnd { system_size, roots, iters, ns } => {
                let mut rec = base("solve", "X", ts, shard);
                rec.push(("dur", Value::F64(*ns as f64 / 1e3)));
                rec.push((
                    "args",
                    obj(vec![
                        ("key", Value::U64(e.key)),
                        ("system_size", Value::U64(*system_size as u64)),
                        ("roots", Value::U64(*roots as u64)),
                        ("iters", Value::U64(*iters)),
                        ("wall_ns", Value::U64(*ns)),
                    ]),
                ));
                out.push(obj(rec));
                // Causal flow: arrival (if still retained) → solve → outputs.
                let arrival = find(e.parent) // SolveStart
                    .and_then(|s| find(s.parent)) // Remodel
                    .and_then(|r| find(r.parent)) // ValidationOutcome
                    .and_then(|v| find(v.parent))
                    .filter(|a| matches!(a.kind, TraceKind::SegmentArrival { .. }));
                let outputs: Vec<&TraceEvent> = events
                    .iter()
                    .filter(|o| o.parent == e.id && matches!(o.kind, TraceKind::OutputEmit { .. }))
                    .collect();
                if arrival.is_some() || !outputs.is_empty() {
                    if let Some(a) = arrival {
                        push_flow(out, "s", e.id, a.t * US_PER_S, shard);
                        push_flow(out, "t", e.id, ts, shard);
                    } else {
                        push_flow(out, "s", e.id, ts, shard);
                    }
                    for o in outputs {
                        push_flow(out, "f", e.id, o.t * US_PER_S, shard);
                    }
                }
            }
            TraceKind::OpSolve { op, rows, outputs } => {
                let mut rec = base(op, "i", ts, shard);
                rec.push(("s", Value::String("t".into())));
                rec.push((
                    "args",
                    obj(vec![
                        ("key", Value::U64(e.key)),
                        ("rows", Value::U64(*rows)),
                        ("outputs", Value::U64(*outputs as u64)),
                    ]),
                ));
                out.push(obj(rec));
            }
            TraceKind::OutputEmit { seg, lo, hi, sources } => {
                let mut rec = base("output", "X", lo * US_PER_S, shard);
                rec.push(("dur", Value::F64(((hi - lo) * US_PER_S).max(1.0))));
                rec.push((
                    "args",
                    obj(vec![
                        ("key", Value::U64(e.key)),
                        ("seg", Value::U64(*seg)),
                        ("lo", Value::F64(*lo)),
                        ("hi", Value::F64(*hi)),
                        ("sources", Value::Array(sources.iter().map(|s| Value::U64(*s)).collect())),
                    ]),
                ));
                out.push(obj(rec));
            }
            TraceKind::GuaranteeBreach { observed, expected, allowance } => {
                let mut rec = base("GuaranteeBreach", "i", ts, shard);
                // Process-scoped instant: a broken guarantee should be
                // visible at any zoom level, not only on its shard track.
                rec.push(("s", Value::String("p".into())));
                rec.push((
                    "args",
                    obj(vec![
                        ("key", Value::U64(e.key)),
                        ("observed", Value::F64(*observed)),
                        ("expected", Value::F64(*expected)),
                        ("allowance", Value::F64(*allowance)),
                        ("emit", Value::U64(e.parent)),
                    ]),
                ));
                out.push(obj(rec));
            }
            TraceKind::SolveStart { .. } => {
                // Rendered via its SolveEnd slice; a bare start (solve
                // still in flight when the ring was copied) is dropped.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{set_trace_enabled, Tracer};

    /// One full causal chain in a fresh tracer ring.
    fn recorded_ring() -> Vec<TraceEvent> {
        set_trace_enabled(true);
        let mut tr = Tracer::ring(64);
        let a = tr.emit(0, 7, 1.0, TraceKind::SegmentArrival { source: 0 });
        let v =
            tr.emit(a, 7, 1.0, TraceKind::ValidationOutcome { slack: 2.0, bound: 0.5, ok: false });
        let r = tr.emit(v, 7, 1.0, TraceKind::Remodel { seg: 40 });
        let s = tr.emit(r, 7, 1.0, TraceKind::SolveStart { system_size: 4 });
        tr.set_scope(s);
        tr.emit_scoped(7, 1.0, TraceKind::OpSolve { op: "filter", rows: 3, outputs: 1 });
        tr.set_scope(0);
        let e = tr.emit(
            s,
            7,
            1.0,
            TraceKind::SolveEnd { system_size: 4, roots: 1, iters: 3, ns: 1500 },
        );
        tr.emit(e, 7, 1.0, TraceKind::OutputEmit { seg: 41, lo: 1.0, hi: 4.0, sources: vec![40] });
        set_trace_enabled(false);
        tr.events().cloned().collect()
    }

    #[test]
    fn chrome_trace_is_valid_trace_event_json() {
        let ring = recorded_ring();
        let json = chrome_trace([(0u32, ring.as_slice())]);
        let doc = serde_json::parse_value(&json).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents array");
        assert!(!events.is_empty());
        for ev in events {
            // Every record carries the Trace Event required fields.
            assert!(ev.get("name").and_then(|v| v.as_str()).is_some(), "{json}");
            let ph = ev.get("ph").and_then(|v| v.as_str()).expect("ph");
            assert!(ev.get("ts").and_then(|v| v.as_f64()).is_some(), "{json}");
            assert!(ev.get("pid").and_then(|v| v.as_u64()).is_some(), "{json}");
            assert!(ev.get("tid").and_then(|v| v.as_u64()).is_some(), "{json}");
            if ph == "X" {
                assert!(ev.get("dur").and_then(|v| v.as_f64()).is_some(), "X needs dur: {json}");
            }
        }
    }

    #[test]
    fn solve_slice_and_flow_arrows_present() {
        let ring = recorded_ring();
        let json = chrome_trace([(3u32, ring.as_slice())]);
        let doc = serde_json::parse_value(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap().to_vec();
        let ph_of = |ph: &str| -> Vec<&Value> {
            events.iter().filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some(ph)).collect()
        };
        // The solve complete-slice carries its wall-clock duration in µs.
        let slices = ph_of("X");
        let solve = slices
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("solve"))
            .expect("solve slice");
        assert_eq!(solve.get("dur").unwrap().as_f64(), Some(1.5));
        assert_eq!(solve.get("tid").unwrap().as_u64(), Some(3));
        // Full flow chain: start at the arrival, step at the solve,
        // finish at the output, all sharing one flow id.
        let (s, t, f) = (ph_of("s"), ph_of("t"), ph_of("f"));
        assert_eq!((s.len(), t.len(), f.len()), (1, 1, 1), "{json}");
        let id = s[0].get("id").unwrap().as_u64().unwrap();
        assert_eq!(t[0].get("id").unwrap().as_u64(), Some(id));
        assert_eq!(f[0].get("id").unwrap().as_u64(), Some(id));
        // Output slice spans the emitted range on the stream timeline.
        let output = slices
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("output"))
            .expect("output slice");
        assert_eq!(output.get("ts").unwrap().as_f64(), Some(1.0 * 1e6));
        assert_eq!(output.get("dur").unwrap().as_f64(), Some(3.0 * 1e6));
        // Per-shard track naming via metadata record.
        assert!(json.contains("\"shard 3\""), "{json}");
    }

    #[test]
    fn empty_and_multi_shard_rings() {
        let json = chrome_trace(std::iter::empty::<(u32, &[TraceEvent])>());
        let doc = serde_json::parse_value(&json).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_array().unwrap().len(), 0);

        let ring = recorded_ring();
        let json = chrome_trace([(0u32, ring.as_slice()), (1u32, ring.as_slice())]);
        let doc = serde_json::parse_value(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let tids: std::collections::HashSet<u64> =
            events.iter().filter_map(|e| e.get("tid").and_then(|v| v.as_u64())).collect();
        assert_eq!(tids, [0u64, 1].into_iter().collect());
    }
}
