//! Point-in-time metric snapshots and the exporters over them: JSON
//! (via serde), a human-readable table, and delta/rate views between two
//! snapshots.

use serde::Serialize;

use crate::registry::{bucket_upper, BUCKETS};

/// Frozen histogram state plus derived order statistics.
#[derive(Debug, Clone, Serialize)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum_ns: u64,
    pub max_ns: u64,
    pub mean_ns: f64,
    pub p50_ns: u64,
    pub p90_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    /// `(inclusive_upper_bound, count)` for non-empty buckets only.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Builds a snapshot from dense bucket counts (index = power-of-two
    /// bucket, as produced by `Histogram`).
    pub fn from_buckets(name: String, dense: Vec<u64>, sum: u64, max: u64) -> Self {
        debug_assert_eq!(dense.len(), BUCKETS);
        let count: u64 = dense.iter().sum();
        let pct = |p: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = (p * count as f64).ceil().max(1.0) as u64;
            let mut seen = 0;
            for (i, c) in dense.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    // Report the bucket's upper bound, capped by the true
                    // maximum so the overflow bucket stays meaningful.
                    return bucket_upper(i).min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            mean_ns: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            p50_ns: pct(0.50),
            p90_ns: pct(0.90),
            p95_ns: pct(0.95),
            p99_ns: pct(0.99),
            buckets: dense
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 0)
                .map(|(i, c)| (bucket_upper(i), *c))
                .collect(),
            name,
            count,
            sum_ns: sum,
            max_ns: max,
        }
    }

    /// This snapshot minus an earlier one of the same histogram.
    fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut dense = vec![0u64; BUCKETS];
        for (hi, c) in &self.buckets {
            dense[dense_index(*hi)] += c;
        }
        for (hi, c) in &earlier.buckets {
            let slot = &mut dense[dense_index(*hi)];
            *slot = slot.saturating_sub(*c);
        }
        HistogramSnapshot::from_buckets(
            self.name.clone(),
            dense,
            self.sum_ns.saturating_sub(earlier.sum_ns),
            self.max_ns, // max is not invertible; keep the later high-water
        )
    }
}

/// Inverse of `bucket_upper` for the sparse `(upper, count)` encoding.
fn dense_index(upper: u64) -> usize {
    if upper == u64::MAX {
        BUCKETS - 1
    } else {
        crate::registry::bucket_index(upper)
    }
}

/// Frozen per-key counter state.
#[derive(Debug, Clone, Serialize)]
pub struct KeyedSnapshot {
    pub name: String,
    pub total: u64,
    /// `(key, count)` pairs, ascending by key.
    pub by_key: Vec<(u64, u64)>,
}

/// Point-in-time view of a whole registry.
#[derive(Debug, Clone, Serialize)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub histograms: Vec<HistogramSnapshot>,
    pub keyed: Vec<KeyedSnapshot>,
}

impl Snapshot {
    /// Counter value by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Whether a counter name belongs to family `base`: either the exact
    /// name or a labeled variant `base{…}` (see [`crate::labeled`]).
    fn in_family(name: &str, base: &str) -> bool {
        name == base || (name.starts_with(base) && name[base.len()..].starts_with('{'))
    }

    /// All counters of family `base` as `(label_block_or_name, value)`
    /// pairs — the per-shard series of one logical gauge.
    pub fn family_values(&self, base: &str) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .filter(|(n, _)| Self::in_family(n, base))
            .map(|(n, v)| (n.clone(), *v))
            .collect()
    }

    /// Sum of a counter family across its label variants.
    pub fn family_sum(&self, base: &str) -> u64 {
        self.counters.iter().filter(|(n, _)| Self::in_family(n, base)).map(|(_, v)| v).sum()
    }

    /// Maximum of a counter family across its label variants (0 when the
    /// family is absent).
    pub fn family_max(&self, base: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _)| Self::in_family(n, base))
            .map(|(_, v)| *v)
            .max()
            .unwrap_or(0)
    }

    /// This snapshot minus an `earlier` one: counter and histogram
    /// differences (metrics absent earlier count from zero). The basis of
    /// rate views and per-phase accounting.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| {
                let before = earlier.counter(n).unwrap_or(0);
                (n.clone(), v.saturating_sub(before))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|h| match earlier.histogram(&h.name) {
                Some(e) => h.delta(e),
                None => h.clone(),
            })
            .collect();
        let keyed = self
            .keyed
            .iter()
            .map(|k| {
                let before = earlier.keyed.iter().find(|e| e.name == k.name);
                let by_key: Vec<(u64, u64)> = k
                    .by_key
                    .iter()
                    .map(|(key, c)| {
                        let b = before
                            .and_then(|e| {
                                e.by_key.iter().find(|(bk, _)| bk == key).map(|(_, v)| *v)
                            })
                            .unwrap_or(0);
                        (*key, c.saturating_sub(b))
                    })
                    .collect();
                KeyedSnapshot {
                    name: k.name.clone(),
                    total: by_key.iter().map(|(_, c)| c).sum(),
                    by_key,
                }
            })
            .collect();
        Snapshot { counters, histograms, keyed }
    }

    /// Per-second rates of every counter over `secs` (a delta snapshot plus
    /// the elapsed wall time gives throughput numbers).
    pub fn rates(&self, secs: f64) -> Vec<(String, f64)> {
        self.counters
            .iter()
            .map(|(n, v)| (n.clone(), if secs > 0.0 { *v as f64 / secs } else { 0.0 }))
            .collect()
    }

    /// Pretty JSON export.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization is infallible")
    }

    /// Human-readable table: counters, then histogram latency summaries,
    /// then keyed counters (top entries).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            let w = self.counters.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
            out.push_str("counters\n");
            for (n, v) in &self.counters {
                out.push_str(&format!("  {n:<w$}  {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            let w = self.histograms.iter().map(|h| h.name.len()).max().unwrap_or(0);
            out.push_str("histograms (ns)\n");
            out.push_str(&format!(
                "  {:<w$}  {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                "name", "count", "mean", "p50", "p95", "p99", "max"
            ));
            for h in &self.histograms {
                out.push_str(&format!(
                    "  {:<w$}  {:>10} {:>10.0} {:>10} {:>10} {:>10} {:>10}\n",
                    h.name, h.count, h.mean_ns, h.p50_ns, h.p95_ns, h.p99_ns, h.max_ns
                ));
            }
        }
        for k in &self.keyed {
            out.push_str(&format!("{} (total {})\n", k.name, k.total));
            let mut ranked = k.by_key.clone();
            ranked.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            for (key, c) in ranked.iter().take(8) {
                out.push_str(&format!("  key {key:<12} {c}\n"));
            }
            if ranked.len() > 8 {
                out.push_str(&format!("  … {} more keys\n", ranked.len() - 8));
            }
        }
        out
    }

    /// Prometheus text exposition (format 0.0.4) of the whole snapshot.
    /// Registry names mangle to `pulse_<name>` with dots as underscores; a
    /// `{k="v"}` block in a registry name (see [`crate::labeled`]) passes
    /// through as Prometheus labels, so per-shard series share one metric
    /// family instead of one family per shard.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: std::collections::HashSet<String> = std::collections::HashSet::new();
        let mut type_line = |out: &mut String, fam: &str, kind: &str| {
            if typed.insert(fam.to_string()) {
                out.push_str(&format!("# TYPE {fam} {kind}\n"));
            }
        };
        for (name, v) in &self.counters {
            let (fam, labels) = prom_name(name);
            type_line(&mut out, &fam, "counter");
            out.push_str(&format!("{fam}{labels} {v}\n"));
        }
        for h in &self.histograms {
            let (fam, labels) = prom_name(&h.name);
            type_line(&mut out, &fam, "histogram");
            // Power-of-two buckets are stored per-bucket; Prometheus wants
            // cumulative counts per inclusive `le` upper bound.
            let mut cum = 0u64;
            for (upper, c) in &h.buckets {
                cum += c;
                let le = if *upper == u64::MAX { "+Inf".into() } else { upper.to_string() };
                out.push_str(&format!(
                    "{fam}_bucket{} {cum}\n",
                    merge_labels(&labels, &format!("le=\"{le}\""))
                ));
            }
            if h.buckets.last().is_none_or(|(u, _)| *u != u64::MAX) {
                out.push_str(&format!(
                    "{fam}_bucket{} {cum}\n",
                    merge_labels(&labels, "le=\"+Inf\"")
                ));
            }
            out.push_str(&format!("{fam}_sum{labels} {}\n", h.sum_ns));
            out.push_str(&format!("{fam}_count{labels} {}\n", h.count));
            // Derived order statistics as gauges: dashboards get
            // quantiles without a PromQL histogram_quantile over the
            // coarse power-of-two buckets.
            for (q, v) in
                [("p50", h.p50_ns), ("p95", h.p95_ns), ("p99", h.p99_ns), ("max", h.max_ns)]
            {
                let qfam = format!("{fam}_{q}");
                type_line(&mut out, &qfam, "gauge");
                out.push_str(&format!("{qfam}{labels} {v}\n"));
            }
        }
        for k in &self.keyed {
            let (fam, labels) = prom_name(&k.name);
            type_line(&mut out, &fam, "counter");
            for (key, c) in &k.by_key {
                out.push_str(&format!(
                    "{fam}{} {c}\n",
                    merge_labels(&labels, &format!("key=\"{key}\""))
                ));
            }
        }
        out
    }
}

/// Splits a registry name into a mangled Prometheus family name and its
/// (possibly empty) `{…}` label block.
fn prom_name(name: &str) -> (String, String) {
    let (base, labels) = match name.split_once('{') {
        Some((b, rest)) => (b, format!("{{{rest}")),
        None => (name, String::new()),
    };
    let mut fam = String::with_capacity(base.len() + 6);
    fam.push_str("pulse_");
    for c in base.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            fam.push(c);
        } else {
            fam.push('_');
        }
    }
    (fam, labels)
}

/// Adds one `k="v"` pair to a (possibly empty) `{…}` label block.
fn merge_labels(labels: &str, extra: &str) -> String {
    match labels.strip_suffix('}') {
        Some(open) if open.len() > 1 => format!("{open},{extra}}}"),
        _ => format!("{{{extra}}}"),
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::MetricsRegistry;

    fn reg_with_data() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("a.in").add(100);
        reg.counter("a.out").add(40);
        for v in [10, 20, 800, 3000] {
            reg.histogram("lat").record(v);
        }
        reg.keyed_counter("viol").inc(3);
        reg.keyed_counter("viol").inc(3);
        reg.keyed_counter("viol").inc(5);
        reg
    }

    #[test]
    fn delta_math() {
        let reg = reg_with_data();
        let before = reg.snapshot();
        reg.counter("a.in").add(23);
        reg.histogram("lat").record(50);
        reg.histogram("lat").record(60);
        reg.keyed_counter("viol").inc(5);
        let after = reg.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.counter("a.in"), Some(23));
        assert_eq!(d.counter("a.out"), Some(0));
        let h = d.histogram("lat").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum_ns, 110);
        let viol = &d.keyed[0];
        assert_eq!(viol.total, 1);
        assert_eq!(viol.by_key, vec![(3, 0), (5, 1)]);
    }

    #[test]
    fn percentiles_from_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h");
        // 99 fast ops at ~16ns, one slow at ~65µs.
        for _ in 0..99 {
            h.record(16);
        }
        h.record(65_000);
        let s = reg.snapshot();
        let hs = s.histogram("h").unwrap();
        assert_eq!(hs.count, 100);
        assert!(hs.p50_ns < 64, "p50 {} should sit in the fast bucket", hs.p50_ns);
        assert!(hs.p99_ns < 64, "p99 rank 99 still in the fast bucket");
        assert_eq!(hs.max_ns, 65_000);
        // Percentile never exceeds the true max.
        assert!(hs.p99_ns <= hs.max_ns);
    }

    #[test]
    fn derived_percentiles_from_known_distribution() {
        // 94 values at 10ns (bucket ≤15), 4 at 1000ns (bucket ≤1023), and
        // 2 at 30000ns (bucket ≤32767): ranks 50/90 land in the first
        // bucket, 95 in the second, 99 and max in the third.
        let reg = MetricsRegistry::new();
        let h = reg.histogram("known");
        for _ in 0..94 {
            h.record(10);
        }
        for _ in 0..4 {
            h.record(1000);
        }
        for _ in 0..2 {
            h.record(30_000);
        }
        let s = reg.snapshot();
        let hs = s.histogram("known").unwrap();
        assert_eq!(hs.count, 100);
        assert_eq!(hs.p50_ns, 15);
        assert_eq!(hs.p90_ns, 15);
        assert_eq!(hs.p95_ns, 1023);
        assert_eq!(hs.p99_ns, 30_000, "capped by true max inside the top bucket");
        assert_eq!(hs.max_ns, 30_000);
        assert!(hs.p50_ns <= hs.p95_ns && hs.p95_ns <= hs.p99_ns && hs.p99_ns <= hs.max_ns);
        // All three exporters carry the derived fields.
        assert!(s.to_json().contains("\"p95_ns\""));
        assert!(s.to_json().contains("\"p99_ns\""));
        assert!(s.to_table().contains("p95"));
        let prom = s.to_prometheus();
        assert!(prom.contains("# TYPE pulse_known_p99 gauge"), "{prom}");
        assert!(prom.contains("pulse_known_p50 15\n"), "{prom}");
        assert!(prom.contains("pulse_known_p95 1023\n"), "{prom}");
        assert!(prom.contains("pulse_known_p99 30000\n"), "{prom}");
        assert!(prom.contains("pulse_known_max 30000\n"), "{prom}");
    }

    #[test]
    fn prometheus_exposition_renders_families_and_labels() {
        let reg = MetricsRegistry::new();
        reg.counter("runtime.tuples_in").set(7);
        reg.counter(&crate::labeled("runtime.tuples_in", &[("shard", "3")])).set(4);
        reg.histogram("runtime.solve_ns").record(100);
        reg.histogram("runtime.solve_ns").record(5000);
        reg.keyed_counter("runtime.violations_by_key").inc(9);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE pulse_runtime_tuples_in counter"), "{text}");
        // One TYPE line per family even with several label variants.
        assert_eq!(text.matches("# TYPE pulse_runtime_tuples_in ").count(), 1, "{text}");
        assert!(text.contains("pulse_runtime_tuples_in 7"), "{text}");
        assert!(text.contains("pulse_runtime_tuples_in{shard=\"3\"} 4"), "{text}");
        assert!(text.contains("# TYPE pulse_runtime_solve_ns histogram"), "{text}");
        assert!(text.contains("pulse_runtime_solve_ns_bucket{le=\"127\"} 1"), "{text}");
        assert!(text.contains("pulse_runtime_solve_ns_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("pulse_runtime_solve_ns_sum 5100"), "{text}");
        assert!(text.contains("pulse_runtime_solve_ns_count 2"), "{text}");
        assert!(text.contains("pulse_runtime_violations_by_key{key=\"9\"} 1"), "{text}");
        // Every line is either a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with("# ") || line.split(' ').count() == 2,
                "malformed exposition line: {line}"
            );
        }
    }

    #[test]
    fn json_and_table_render() {
        let reg = reg_with_data();
        let s = reg.snapshot();
        let json = s.to_json();
        assert!(json.contains("\"a.in\""), "{json}");
        assert!(json.contains("\"histograms\""), "{json}");
        let table = s.to_table();
        assert!(table.contains("a.in"), "{table}");
        assert!(table.contains("viol (total 3)"), "{table}");
    }

    #[test]
    fn family_helpers_merge_label_variants() {
        let reg = MetricsRegistry::new();
        reg.counter("shard.queue_depth").set(2);
        reg.counter(&crate::labeled("shard.queue_depth", &[("shard", "0")])).set(3);
        reg.counter(&crate::labeled("shard.queue_depth", &[("shard", "1")])).set(7);
        reg.counter("shard.queue_depth_max").set(99); // different family
        let s = reg.snapshot();
        assert_eq!(s.family_sum("shard.queue_depth"), 12);
        assert_eq!(s.family_max("shard.queue_depth"), 7);
        assert_eq!(s.family_values("shard.queue_depth").len(), 3);
        assert_eq!(s.family_sum("absent.metric"), 0);
        assert_eq!(s.family_max("absent.metric"), 0);
    }

    #[test]
    fn rates_divide_by_elapsed() {
        let reg = reg_with_data();
        let r = reg.snapshot().rates(2.0);
        assert!(r.iter().any(|(n, v)| n == "a.in" && (*v - 50.0).abs() < 1e-12));
    }
}
