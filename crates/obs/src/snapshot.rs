//! Point-in-time metric snapshots and the exporters over them: JSON
//! (via serde), a human-readable table, and delta/rate views between two
//! snapshots.

use serde::Serialize;

use crate::registry::{bucket_upper, BUCKETS};

/// Frozen histogram state plus derived order statistics.
#[derive(Debug, Clone, Serialize)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum_ns: u64,
    pub max_ns: u64,
    pub mean_ns: f64,
    pub p50_ns: u64,
    pub p90_ns: u64,
    pub p99_ns: u64,
    /// `(inclusive_upper_bound, count)` for non-empty buckets only.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Builds a snapshot from dense bucket counts (index = power-of-two
    /// bucket, as produced by `Histogram`).
    pub fn from_buckets(name: String, dense: Vec<u64>, sum: u64, max: u64) -> Self {
        debug_assert_eq!(dense.len(), BUCKETS);
        let count: u64 = dense.iter().sum();
        let pct = |p: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = (p * count as f64).ceil().max(1.0) as u64;
            let mut seen = 0;
            for (i, c) in dense.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    // Report the bucket's upper bound, capped by the true
                    // maximum so the overflow bucket stays meaningful.
                    return bucket_upper(i).min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            mean_ns: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            p50_ns: pct(0.50),
            p90_ns: pct(0.90),
            p99_ns: pct(0.99),
            buckets: dense
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 0)
                .map(|(i, c)| (bucket_upper(i), *c))
                .collect(),
            name,
            count,
            sum_ns: sum,
            max_ns: max,
        }
    }

    /// This snapshot minus an earlier one of the same histogram.
    fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut dense = vec![0u64; BUCKETS];
        for (hi, c) in &self.buckets {
            dense[dense_index(*hi)] += c;
        }
        for (hi, c) in &earlier.buckets {
            let slot = &mut dense[dense_index(*hi)];
            *slot = slot.saturating_sub(*c);
        }
        HistogramSnapshot::from_buckets(
            self.name.clone(),
            dense,
            self.sum_ns.saturating_sub(earlier.sum_ns),
            self.max_ns, // max is not invertible; keep the later high-water
        )
    }
}

/// Inverse of `bucket_upper` for the sparse `(upper, count)` encoding.
fn dense_index(upper: u64) -> usize {
    if upper == u64::MAX {
        BUCKETS - 1
    } else {
        crate::registry::bucket_index(upper)
    }
}

/// Frozen per-key counter state.
#[derive(Debug, Clone, Serialize)]
pub struct KeyedSnapshot {
    pub name: String,
    pub total: u64,
    /// `(key, count)` pairs, ascending by key.
    pub by_key: Vec<(u64, u64)>,
}

/// Point-in-time view of a whole registry.
#[derive(Debug, Clone, Serialize)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub histograms: Vec<HistogramSnapshot>,
    pub keyed: Vec<KeyedSnapshot>,
}

impl Snapshot {
    /// Counter value by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// This snapshot minus an `earlier` one: counter and histogram
    /// differences (metrics absent earlier count from zero). The basis of
    /// rate views and per-phase accounting.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| {
                let before = earlier.counter(n).unwrap_or(0);
                (n.clone(), v.saturating_sub(before))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|h| match earlier.histogram(&h.name) {
                Some(e) => h.delta(e),
                None => h.clone(),
            })
            .collect();
        let keyed = self
            .keyed
            .iter()
            .map(|k| {
                let before = earlier.keyed.iter().find(|e| e.name == k.name);
                let by_key: Vec<(u64, u64)> = k
                    .by_key
                    .iter()
                    .map(|(key, c)| {
                        let b = before
                            .and_then(|e| {
                                e.by_key.iter().find(|(bk, _)| bk == key).map(|(_, v)| *v)
                            })
                            .unwrap_or(0);
                        (*key, c.saturating_sub(b))
                    })
                    .collect();
                KeyedSnapshot {
                    name: k.name.clone(),
                    total: by_key.iter().map(|(_, c)| c).sum(),
                    by_key,
                }
            })
            .collect();
        Snapshot { counters, histograms, keyed }
    }

    /// Per-second rates of every counter over `secs` (a delta snapshot plus
    /// the elapsed wall time gives throughput numbers).
    pub fn rates(&self, secs: f64) -> Vec<(String, f64)> {
        self.counters
            .iter()
            .map(|(n, v)| (n.clone(), if secs > 0.0 { *v as f64 / secs } else { 0.0 }))
            .collect()
    }

    /// Pretty JSON export.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization is infallible")
    }

    /// Human-readable table: counters, then histogram latency summaries,
    /// then keyed counters (top entries).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            let w = self.counters.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
            out.push_str("counters\n");
            for (n, v) in &self.counters {
                out.push_str(&format!("  {n:<w$}  {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            let w = self.histograms.iter().map(|h| h.name.len()).max().unwrap_or(0);
            out.push_str("histograms (ns)\n");
            out.push_str(&format!(
                "  {:<w$}  {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                "name", "count", "mean", "p50", "p99", "max"
            ));
            for h in &self.histograms {
                out.push_str(&format!(
                    "  {:<w$}  {:>10} {:>10.0} {:>10} {:>10} {:>10}\n",
                    h.name, h.count, h.mean_ns, h.p50_ns, h.p99_ns, h.max_ns
                ));
            }
        }
        for k in &self.keyed {
            out.push_str(&format!("{} (total {})\n", k.name, k.total));
            let mut ranked = k.by_key.clone();
            ranked.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            for (key, c) in ranked.iter().take(8) {
                out.push_str(&format!("  key {key:<12} {c}\n"));
            }
            if ranked.len() > 8 {
                out.push_str(&format!("  … {} more keys\n", ranked.len() - 8));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::MetricsRegistry;

    fn reg_with_data() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("a.in").add(100);
        reg.counter("a.out").add(40);
        for v in [10, 20, 800, 3000] {
            reg.histogram("lat").record(v);
        }
        reg.keyed_counter("viol").inc(3);
        reg.keyed_counter("viol").inc(3);
        reg.keyed_counter("viol").inc(5);
        reg
    }

    #[test]
    fn delta_math() {
        let reg = reg_with_data();
        let before = reg.snapshot();
        reg.counter("a.in").add(23);
        reg.histogram("lat").record(50);
        reg.histogram("lat").record(60);
        reg.keyed_counter("viol").inc(5);
        let after = reg.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.counter("a.in"), Some(23));
        assert_eq!(d.counter("a.out"), Some(0));
        let h = d.histogram("lat").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum_ns, 110);
        let viol = &d.keyed[0];
        assert_eq!(viol.total, 1);
        assert_eq!(viol.by_key, vec![(3, 0), (5, 1)]);
    }

    #[test]
    fn percentiles_from_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h");
        // 99 fast ops at ~16ns, one slow at ~65µs.
        for _ in 0..99 {
            h.record(16);
        }
        h.record(65_000);
        let s = reg.snapshot();
        let hs = s.histogram("h").unwrap();
        assert_eq!(hs.count, 100);
        assert!(hs.p50_ns < 64, "p50 {} should sit in the fast bucket", hs.p50_ns);
        assert!(hs.p99_ns < 64, "p99 rank 99 still in the fast bucket");
        assert_eq!(hs.max_ns, 65_000);
        // Percentile never exceeds the true max.
        assert!(hs.p99_ns <= hs.max_ns);
    }

    #[test]
    fn json_and_table_render() {
        let reg = reg_with_data();
        let s = reg.snapshot();
        let json = s.to_json();
        assert!(json.contains("\"a.in\""), "{json}");
        assert!(json.contains("\"histograms\""), "{json}");
        let table = s.to_table();
        assert!(table.contains("a.in"), "{table}");
        assert!(table.contains("viol (total 3)"), "{table}");
    }

    #[test]
    fn rates_divide_by_elapsed() {
        let reg = reg_with_data();
        let r = reg.snapshot().rates(2.0);
        assert!(r.iter().any(|(n, v)| n == "a.in" && (*v - 50.0).abs() < 1e-12));
    }
}
