//! Per-key guarantee ledgers for the live shadow auditor.
//!
//! The runtime's auditor (crates/core) samples a deterministic key subset,
//! replays their raw tuples through a discrete reference evaluator, and
//! reports each comparison here as raw numbers: observed deviation against
//! the allowance the shared tolerance model granted at that instant. This
//! module only does the bookkeeping — per-key SLO ledgers, the merged
//! roll-up across shards, and the `/audit` JSON summary — so it can sit at
//! the bottom of the crate stack with no knowledge of models or plans.
//!
//! A *breach* is a strict violation: deviation exceeding the allowance.
//! *Headroom* is the unconsumed fraction of the allowance in basis points
//! (10000 = exact answer, 0 = allowance fully consumed or breached);
//! tracking its minimum per key turns ε from a static promise into a
//! measured per-key SLO.

use std::collections::HashMap;

use serde::Value;

/// The offending observation of the most recent strict violation.
#[derive(Debug, Clone, PartialEq)]
pub struct BreachRecord {
    pub key: u64,
    /// Stream time of the compared instant.
    pub t: f64,
    /// Observed deviation from the reference.
    pub observed: f64,
    /// The allowance that was promised (and exceeded).
    pub bound: f64,
}

/// One audited key's running guarantee ledger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyLedger {
    /// Comparisons performed.
    pub checks: u64,
    /// Instants the comparator declined (partial window, disturbance,
    /// non-continuous aggregate, no validation verdict).
    pub skips: u64,
    /// Strict violations.
    pub breaches: u64,
    /// Worst headroom seen, in basis points (10000 until first check).
    pub min_headroom_bp: u64,
    pub last_deviation: f64,
    pub last_allowance: f64,
    /// Stream time of the most recent check.
    pub last_t: f64,
}

impl Default for KeyLedger {
    fn default() -> Self {
        KeyLedger {
            checks: 0,
            skips: 0,
            breaches: 0,
            min_headroom_bp: 10000,
            last_deviation: 0.0,
            last_allowance: 0.0,
            last_t: f64::NEG_INFINITY,
        }
    }
}

/// Headroom in basis points: the unconsumed fraction of the allowance.
fn headroom_bp(deviation: f64, allowance: f64) -> u64 {
    if allowance <= 0.0 {
        return 0;
    }
    (((1.0 - deviation / allowance).max(0.0)) * 10000.0).min(10000.0) as u64
}

/// The guarantee ledger: per-key SLO state plus global roll-ups. Cloned
/// out of shard workers and merged with [`AuditLedger::absorb`].
#[derive(Debug, Clone, Default)]
pub struct AuditLedger {
    keys: HashMap<u64, KeyLedger>,
    pub checks: u64,
    pub skips: u64,
    pub breaches: u64,
    headroom_sum: u64,
    pub last_breach: Option<BreachRecord>,
}

impl AuditLedger {
    /// Records one comparison; returns whether it was a strict violation.
    pub fn check(&mut self, key: u64, t: f64, deviation: f64, allowance: f64) -> bool {
        let hb = headroom_bp(deviation, allowance);
        let breach = deviation > allowance;
        let k = self.keys.entry(key).or_default();
        k.checks += 1;
        k.min_headroom_bp = k.min_headroom_bp.min(hb);
        k.last_deviation = deviation;
        k.last_allowance = allowance;
        k.last_t = t;
        self.checks += 1;
        self.headroom_sum += hb;
        if breach {
            k.breaches += 1;
            self.breaches += 1;
            self.last_breach = Some(BreachRecord { key, t, observed: deviation, bound: allowance });
        }
        breach
    }

    /// Records one declined comparison for an audited key.
    pub fn skip(&mut self, key: u64) {
        self.keys.entry(key).or_default().skips += 1;
        self.skips += 1;
    }

    /// Number of distinct keys that produced at least one check or skip.
    pub fn audited_keys(&self) -> usize {
        self.keys.len()
    }

    /// Ledger of one key, if it was audited.
    pub fn key(&self, key: u64) -> Option<&KeyLedger> {
        self.keys.get(&key)
    }

    /// Mean headroom over all checks, in basis points.
    pub fn mean_headroom_bp(&self) -> u64 {
        if self.checks == 0 {
            return 10000;
        }
        self.headroom_sum / self.checks
    }

    /// Merges another shard's ledger into this one.
    pub fn absorb(&mut self, other: &AuditLedger) {
        for (key, o) in &other.keys {
            let k = self.keys.entry(*key).or_default();
            k.checks += o.checks;
            k.skips += o.skips;
            k.breaches += o.breaches;
            k.min_headroom_bp = k.min_headroom_bp.min(o.min_headroom_bp);
            if o.last_t >= k.last_t {
                k.last_deviation = o.last_deviation;
                k.last_allowance = o.last_allowance;
                k.last_t = o.last_t;
            }
        }
        self.checks += other.checks;
        self.skips += other.skips;
        self.breaches += other.breaches;
        self.headroom_sum += other.headroom_sum;
        match (&self.last_breach, &other.last_breach) {
            (Some(a), Some(b)) if b.t >= a.t => self.last_breach = other.last_breach.clone(),
            (None, Some(_)) => self.last_breach = other.last_breach.clone(),
            _ => {}
        }
    }

    /// The `k` keys in worst shape: most breaches first, then least
    /// minimum headroom, then key for determinism.
    pub fn worst(&self, k: usize) -> Vec<(u64, KeyLedger)> {
        let mut v: Vec<_> = self.keys.iter().map(|(key, l)| (*key, *l)).collect();
        v.sort_by(|a, b| {
            b.1.breaches
                .cmp(&a.1.breaches)
                .then(a.1.min_headroom_bp.cmp(&b.1.min_headroom_bp))
                .then(a.0.cmp(&b.0))
        });
        v.truncate(k);
        v
    }

    /// The `/audit` JSON document: global roll-up + worst-K key table.
    pub fn summary_json(&self, worst_k: usize) -> String {
        let obj = |pairs: Vec<(&str, Value)>| {
            Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        };
        let worst: Vec<Value> = self
            .worst(worst_k)
            .into_iter()
            .map(|(key, l)| {
                obj(vec![
                    ("key", Value::U64(key)),
                    ("checks", Value::U64(l.checks)),
                    ("skips", Value::U64(l.skips)),
                    ("breaches", Value::U64(l.breaches)),
                    ("min_headroom_bp", Value::U64(l.min_headroom_bp)),
                    ("last_deviation", Value::F64(l.last_deviation)),
                    ("last_allowance", Value::F64(l.last_allowance)),
                    ("last_t", Value::F64(l.last_t.max(f64::MIN))),
                ])
            })
            .collect();
        let last_breach = match &self.last_breach {
            None => Value::Null,
            Some(b) => obj(vec![
                ("key", Value::U64(b.key)),
                ("t", Value::F64(b.t)),
                ("observed", Value::F64(b.observed)),
                ("bound", Value::F64(b.bound)),
            ]),
        };
        let doc = obj(vec![
            ("audited_keys", Value::U64(self.audited_keys() as u64)),
            ("checks", Value::U64(self.checks)),
            ("skips", Value::U64(self.skips)),
            ("breaches", Value::U64(self.breaches)),
            ("mean_headroom_bp", Value::U64(self.mean_headroom_bp())),
            ("worst", Value::Array(worst)),
            ("last_breach", last_breach),
        ]);
        serde_json::to_string(&doc).expect("audit summary serialization is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_tracks_headroom_and_breaches() {
        let mut l = AuditLedger::default();
        assert!(!l.check(7, 1.0, 0.25, 1.0)); // 7500 bp headroom
        assert!(!l.check(7, 2.0, 0.5, 1.0)); // 5000 bp
        assert!(l.check(7, 3.0, 2.0, 1.0)); // breach
        l.skip(9);
        assert_eq!(l.audited_keys(), 2);
        assert_eq!((l.checks, l.skips, l.breaches), (3, 1, 1));
        let k = l.key(7).unwrap();
        assert_eq!(k.min_headroom_bp, 0);
        assert_eq!(k.breaches, 1);
        assert_eq!(k.last_t, 3.0);
        let b = l.last_breach.as_ref().unwrap();
        assert_eq!((b.key, b.t), (7, 3.0));
        assert_eq!(l.mean_headroom_bp(), (7500 + 5000) / 3);
        // Zero allowance has no headroom but only breaches on positive
        // deviation.
        let mut z = AuditLedger::default();
        assert!(!z.check(1, 0.0, 0.0, 0.0));
        assert_eq!(z.key(1).unwrap().min_headroom_bp, 0);
    }

    #[test]
    fn absorb_merges_per_key_and_global() {
        let mut a = AuditLedger::default();
        a.check(1, 1.0, 0.1, 1.0);
        a.skip(2);
        let mut b = AuditLedger::default();
        b.check(1, 2.0, 0.9, 1.0);
        b.check(3, 0.5, 3.0, 1.0); // breach at t=0.5
        a.absorb(&b);
        assert_eq!(a.audited_keys(), 3);
        assert_eq!((a.checks, a.skips, a.breaches), (3, 1, 1));
        let k = a.key(1).unwrap();
        assert_eq!(k.checks, 2);
        // 1 − 0.9 rounds below 0.1 in binary, so the bp floor is 999.
        assert_eq!(k.min_headroom_bp, 999);
        assert_eq!(k.last_t, 2.0); // b's later check wins
        assert_eq!(a.last_breach.as_ref().unwrap().key, 3);
        // Absorbing an older breach keeps the newer one.
        let mut c = AuditLedger::default();
        c.check(4, 0.1, 2.0, 1.0);
        c.absorb(&a);
        assert_eq!(c.last_breach.as_ref().unwrap().key, 3);
        assert_eq!(c.breaches, 2);
    }

    #[test]
    fn worst_orders_by_breaches_then_headroom() {
        let mut l = AuditLedger::default();
        l.check(1, 1.0, 0.1, 1.0); // 9000 bp, clean
        l.check(2, 1.0, 0.8, 1.0); // 2000 bp, clean
        l.check(3, 1.0, 5.0, 1.0); // breach
        let w = l.worst(2);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].0, 3);
        assert_eq!(w[1].0, 2);
        assert_eq!(l.worst(10).len(), 3);
    }

    #[test]
    fn summary_json_shape() {
        let mut l = AuditLedger::default();
        l.check(5, 1.0, 0.5, 1.0);
        l.check(5, 2.0, 4.0, 2.0);
        let json = l.summary_json(8);
        let doc = serde_json::parse_value(&json).expect("valid JSON");
        assert_eq!(doc.get("audited_keys").and_then(Value::as_u64), Some(1));
        assert_eq!(doc.get("checks").and_then(Value::as_u64), Some(2));
        assert_eq!(doc.get("breaches").and_then(Value::as_u64), Some(1));
        let worst = doc.get("worst").and_then(Value::as_array).unwrap();
        assert_eq!(worst.len(), 1);
        assert_eq!(worst[0].get("key").and_then(Value::as_u64), Some(5));
        let lb = doc.get("last_breach").unwrap();
        assert_eq!(lb.get("t").and_then(Value::as_f64), Some(2.0));
        // Clean ledger: null last_breach, empty worst table.
        let empty = AuditLedger::default().summary_json(4);
        let doc = serde_json::parse_value(&empty).unwrap();
        assert_eq!(doc.get("last_breach"), Some(&Value::Null));
        assert_eq!(doc.get("worst").and_then(Value::as_array).map(<[Value]>::len), Some(0));
    }
}
