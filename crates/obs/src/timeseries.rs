//! In-process telemetry history: tiered ring-buffer time series.
//!
//! Every scrape surface built before this module is point-in-time — you
//! can read `/metrics` *now* but not how violation storms or solver
//! latency evolved over a run. [`TimeSeriesStore`] closes that gap
//! without any external dependency: a collector tick (the runtimes'
//! `publish_metrics`) hands it a [`Snapshot`] and the store appends one
//! point per counter — plus derived `p50_ns`/`p95_ns`/`p99_ns` points
//! per histogram — into fixed-capacity per-metric rings.
//!
//! Retention is tiered like any RRD: a **raw** ring keeps every sample,
//! a **mid** ring keeps the last sample of each 15 s bucket, and a
//! **coarse** ring keeps the last sample of each 60 s bucket. Queries
//! stitch the tiers back together — coarse where the mid ring no longer
//! reaches, mid where the raw ring no longer reaches, raw for the
//! newest window — so a long run degrades to lower resolution instead
//! of forgetting.
//!
//! Cost model: the store is only touched on publish ticks (human-scale
//! cadence), never on the per-tuple path, so the suppressed fast path
//! pays nothing for history. Memory is bounded by
//! `metrics × (raw_cap + mid_cap + coarse_cap)` points of 16 bytes.
//!
//! Timestamps are seconds since the store was created (its *epoch*),
//! which is also what `/timeseries` serves; all series sampled by one
//! tick share one timestamp, so family sums align point-for-point.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::snapshot::Snapshot;

/// One sample: store-relative time in seconds, metric value.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct Point {
    pub t: f64,
    pub v: f64,
}

/// Ring capacities and downsampling bucket widths.
#[derive(Debug, Clone, Copy)]
pub struct TsConfig {
    /// Newest-window ring: every sample, any cadence.
    pub raw_cap: usize,
    /// Mid tier: last sample per `mid_bucket_s` bucket.
    pub mid_cap: usize,
    /// Coarse tier: last sample per `coarse_bucket_s` bucket.
    pub coarse_cap: usize,
    pub mid_bucket_s: f64,
    pub coarse_bucket_s: f64,
}

impl Default for TsConfig {
    fn default() -> Self {
        // At a 1 s collector cadence: ~10 min raw, 1 h mid, 24 h coarse.
        TsConfig {
            raw_cap: 600,
            mid_cap: 240,
            coarse_cap: 1440,
            mid_bucket_s: 15.0,
            coarse_bucket_s: 60.0,
        }
    }
}

/// The tiered rings of one metric.
#[derive(Debug, Default)]
struct Series {
    raw: VecDeque<Point>,
    mid: VecDeque<Point>,
    coarse: VecDeque<Point>,
}

impl Series {
    fn push(&mut self, p: Point, cfg: &TsConfig) {
        if self.raw.len() >= cfg.raw_cap {
            self.raw.pop_front();
        }
        self.raw.push_back(p);
        push_bucketed(&mut self.mid, p, cfg.mid_cap, cfg.mid_bucket_s);
        push_bucketed(&mut self.coarse, p, cfg.coarse_cap, cfg.coarse_bucket_s);
    }

    /// Tiers stitched oldest→newest: coarse points older than the mid
    /// ring's reach, mid points older than the raw ring's reach, then
    /// the raw ring itself.
    fn stitched(&self) -> impl Iterator<Item = Point> + '_ {
        let raw_start = self.raw.front().map_or(f64::INFINITY, |p| p.t);
        let mid_start = self.mid.front().map_or(raw_start, |p| p.t.min(raw_start));
        self.coarse
            .iter()
            .filter(move |p| p.t < mid_start)
            .chain(self.mid.iter().filter(move |p| p.t < raw_start))
            .chain(self.raw.iter())
            .copied()
    }
}

/// Last-value-per-bucket downsampling: a sample landing in the same
/// bucket as the ring's newest point replaces it; a new bucket appends
/// (evicting the oldest past `cap`).
fn push_bucketed(ring: &mut VecDeque<Point>, p: Point, cap: usize, width: f64) {
    let bucket = (p.t / width).floor();
    if let Some(back) = ring.back_mut() {
        if (back.t / width).floor() == bucket {
            *back = p;
            return;
        }
    }
    if ring.len() >= cap {
        ring.pop_front();
    }
    ring.push_back(p);
}

/// Tiered in-process time-series store over registry snapshots.
pub struct TimeSeriesStore {
    epoch: Instant,
    cfg: TsConfig,
    inner: Mutex<HashMap<String, Series>>,
}

impl TimeSeriesStore {
    pub fn new(cfg: TsConfig) -> Self {
        TimeSeriesStore { epoch: Instant::now(), cfg, inner: Mutex::new(HashMap::new()) }
    }

    /// Seconds since the store was created — the time base of every
    /// stored point and of the `since` query parameter.
    pub fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Appends one point per counter and `p50_ns`/`p95_ns`/`p99_ns`
    /// points per histogram, all stamped with [`Self::now`].
    pub fn sample(&self, snap: &Snapshot) {
        self.sample_at(snap, self.now());
    }

    /// [`Self::sample`] with an explicit timestamp (tests and replay).
    pub fn sample_at(&self, snap: &Snapshot, t: f64) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        for (name, v) in &snap.counters {
            g.entry(name.clone()).or_default().push(Point { t, v: *v as f64 }, &self.cfg);
        }
        for h in &snap.histograms {
            for (suffix, v) in [(".p50_ns", h.p50_ns), (".p95_ns", h.p95_ns), (".p99_ns", h.p99_ns)]
            {
                let key = format!("{}{}", h.name, suffix);
                g.entry(key).or_default().push(Point { t, v: v as f64 }, &self.cfg);
            }
        }
    }

    /// Appends a single point for one metric (collector-independent
    /// series, e.g. derived gauges).
    pub fn push(&self, metric: &str, t: f64, v: f64) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        g.entry(metric.to_string()).or_default().push(Point { t, v }, &self.cfg);
    }

    /// The series for `metric` from `since` (store-relative seconds)
    /// onward, oldest first, tiers stitched.
    ///
    /// A `metric` without a `{` is treated as a *family* base name and
    /// summed across its label variants (`base{shard="0"}` + …), the
    /// time-series analogue of [`Snapshot::family_sum`]; points align
    /// because every variant is sampled by the same tick. A name with
    /// an explicit label block selects that exact series.
    pub fn series(&self, metric: &str, since: f64) -> Vec<Point> {
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let exact = metric.contains('{');
        // Sum by quantized timestamp (µs): variants sampled by one tick
        // share a timestamp bit-exactly, this just makes the key Ord.
        let mut merged: BTreeMap<i64, f64> = BTreeMap::new();
        for (name, series) in g.iter() {
            let member = if exact { name == metric } else { in_family(name, metric) };
            if !member {
                continue;
            }
            for p in series.stitched() {
                if p.t >= since {
                    *merged.entry((p.t * 1e6).round() as i64).or_insert(0.0) += p.v;
                }
            }
        }
        merged.into_iter().map(|(tq, v)| Point { t: tq as f64 / 1e6, v }).collect()
    }

    /// The newest `n` points of `metric` (family-summed like
    /// [`Self::series`]), oldest first.
    pub fn series_last(&self, metric: &str, n: usize) -> Vec<Point> {
        let mut all = self.series(metric, 0.0);
        if all.len() > n {
            all.drain(..all.len() - n);
        }
        all
    }

    /// Every metric name with at least one stored point, sorted.
    pub fn metric_names(&self) -> Vec<String> {
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let mut names: Vec<String> = g.keys().cloned().collect();
        names.sort();
        names
    }
}

/// Same family rule as [`Snapshot`]: the base name itself or a labeled
/// variant `base{…}`.
fn in_family(name: &str, base: &str) -> bool {
    name == base || (name.starts_with(base) && name[base.len()..].starts_with('{'))
}

/// The process-global store `/timeseries` serves and the runtimes'
/// `publish_metrics` collector ticks feed.
pub fn store() -> &'static TimeSeriesStore {
    static STORE: OnceLock<TimeSeriesStore> = OnceLock::new();
    STORE.get_or_init(|| TimeSeriesStore::new(TsConfig::default()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn tiny() -> TimeSeriesStore {
        TimeSeriesStore::new(TsConfig {
            raw_cap: 4,
            mid_cap: 4,
            coarse_cap: 4,
            mid_bucket_s: 15.0,
            coarse_bucket_s: 60.0,
        })
    }

    #[test]
    fn raw_ring_wraps_and_keeps_newest_window_in_order() {
        let ts = tiny();
        for i in 0..10 {
            ts.push("m", i as f64 * 0.5, i as f64);
        }
        let pts = ts.series("m", 0.0);
        // 10 half-second samples: raw keeps the newest 4, and everything
        // older was folded into the single 15 s mid/coarse bucket that
        // the raw window already covers — so the query returns exactly
        // the newest window, oldest first.
        assert_eq!(pts.len(), 4, "{pts:?}");
        assert_eq!(pts.iter().map(|p| p.v as i64).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert!(pts.windows(2).all(|w| w[0].t < w[1].t), "{pts:?}");
    }

    #[test]
    fn tiers_downsample_older_history() {
        let ts = tiny();
        // One sample per second for 100 s: raw reaches back 4 s, mid
        // 4×15 s buckets, coarse 4×60 s buckets.
        for i in 0..100 {
            ts.push("m", i as f64, i as f64);
        }
        let pts = ts.series("m", 0.0);
        assert!(pts.windows(2).all(|w| w[0].t < w[1].t), "{pts:?}");
        // Newest window is raw resolution (1 s apart)…
        let newest: Vec<i64> = pts.iter().rev().take(4).rev().map(|p| p.v as i64).collect();
        assert_eq!(newest, vec![96, 97, 98, 99]);
        // …and older points come from the 15 s tier (last sample of
        // each bucket, i.e. t ≡ 14 mod 15).
        let older: Vec<i64> =
            pts.iter().filter(|p| p.t < 96.0).map(|p| (p.t as i64) % 15).collect();
        assert!(!older.is_empty() && older.iter().all(|m| *m == 14), "mid-tier points: {pts:?}");
        assert!(pts.len() < 100, "history must be downsampled, got {}", pts.len());
    }

    #[test]
    fn since_filters_and_family_sums() {
        let ts = tiny();
        for i in 0..3 {
            let t = i as f64;
            ts.push("runtime.violations{shard=\"0\"}", t, 10.0 + t);
            ts.push("runtime.violations{shard=\"1\"}", t, 1.0);
        }
        let fam = ts.series("runtime.violations", 0.0);
        assert_eq!(fam.len(), 3);
        assert_eq!(fam[0].v, 11.0);
        assert_eq!(fam[2].v, 13.0);
        // since trims the front.
        assert_eq!(ts.series("runtime.violations", 1.5).len(), 1);
        // Exact labeled name selects one variant.
        let one = ts.series("runtime.violations{shard=\"1\"}", 0.0);
        assert!(one.iter().all(|p| p.v == 1.0), "{one:?}");
        // Unrelated longer name is not in the family.
        ts.push("runtime.violations_by_key", 0.0, 99.0);
        assert_eq!(ts.series("runtime.violations", 0.0).len(), 3);
    }

    #[test]
    fn sample_records_counters_and_histogram_percentiles() {
        let reg = MetricsRegistry::new();
        reg.counter("ts.test.hits").set(5);
        for _ in 0..100 {
            reg.histogram("ts.test.lat").record(100);
        }
        let ts = tiny();
        ts.sample_at(&reg.snapshot(), 1.0);
        reg.counter("ts.test.hits").set(9);
        ts.sample_at(&reg.snapshot(), 2.0);
        let hits = ts.series("ts.test.hits", 0.0);
        assert_eq!(hits.len(), 2);
        assert_eq!((hits[0].v, hits[1].v), (5.0, 9.0));
        let p99 = ts.series("ts.test.lat.p99_ns", 0.0);
        assert_eq!(p99.len(), 2);
        assert!(p99[0].v >= 100.0, "{p99:?}");
        assert!(ts.metric_names().contains(&"ts.test.lat.p50_ns".to_string()));
    }

    #[test]
    fn series_last_returns_newest_n() {
        let ts = tiny();
        for i in 0..4 {
            ts.push("m", i as f64, i as f64);
        }
        let last2 = ts.series_last("m", 2);
        assert_eq!(last2.iter().map(|p| p.v as i64).collect::<Vec<_>>(), vec![2, 3]);
    }
}
