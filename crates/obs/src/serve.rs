//! Dependency-free HTTP serving surface for a running Pulse process.
//!
//! A blocking single-threaded listener (std::net only — the build
//! environment is offline, so no hyper/axum) exposing:
//!
//! - `GET /metrics` — Prometheus text exposition (format 0.0.4) of the
//!   process-global registry snapshot, per-shard series as `shard="i"`
//!   labels;
//! - `GET /snapshot` — the same snapshot as JSON (what `pulse_top` polls);
//! - `GET /explain?key=K&t0=A&t1=B` — the flight recorder's provenance
//!   tree for key `K` over stream-time `[A, B]`, as JSON. The handler is
//!   injected by the host (e.g. a closure fanning the query to the owning
//!   shard), keeping this crate decoupled from the runtime.
//!
//! One request per connection, `Connection: close` — scrape endpoints do
//! not need keep-alive, and the accept loop polls a stop flag so
//! [`ServeHandle`] (and its `Drop`) can shut the listener down cleanly.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Host-provided `/explain` handler: `(key, t0, t1)` → serialized JSON
/// report, or `None` when the key/span has nothing to explain.
pub type ExplainFn = Arc<dyn Fn(u64, f64, f64) -> Option<String> + Send + Sync>;

/// Running listener; dropping it stops the serving thread.
pub struct ServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9187`, port 0 for ephemeral) and serves
/// until the returned handle is dropped. Pass `None` to disable `/explain`.
pub fn serve(addr: &str, explain: Option<ExplainFn>) -> std::io::Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let thread = std::thread::Builder::new().name("pulse-obs-serve".into()).spawn(move || {
        while !stop2.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((mut conn, _)) => {
                    let _ = handle_conn(&mut conn, explain.as_ref());
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    })?;
    Ok(ServeHandle { addr, stop, thread: Some(thread) })
}

fn handle_conn(conn: &mut TcpStream, explain: Option<&ExplainFn>) -> std::io::Result<()> {
    conn.set_nonblocking(false)?;
    conn.set_read_timeout(Some(Duration::from_secs(2)))?;
    // Only the request line matters; read until the header terminator (or
    // 4 KiB) so well-behaved clients aren't cut off mid-request.
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 512];
    loop {
        let n = match conn.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= 4096 {
            break;
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let line = request.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, ctype, body) = if method != "GET" {
        (405, "text/plain", "method not allowed\n".to_string())
    } else {
        route(target, explain)
    };
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Not Implemented",
    };
    let resp = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    conn.write_all(resp.as_bytes())
}

fn route(target: &str, explain: Option<&ExplainFn>) -> (u16, &'static str, String) {
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    match path {
        "/metrics" => (
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            crate::global().snapshot().to_prometheus(),
        ),
        "/snapshot" => (200, "application/json", crate::global().snapshot().to_json()),
        "/explain" => {
            let Some(explain) = explain else {
                return (501, "text/plain", "explain is not wired on this process\n".into());
            };
            let Some((key, t0, t1)) = parse_explain_query(query) else {
                return (400, "text/plain", "usage: /explain?key=K&t0=A&t1=B\n".into());
            };
            match explain(key, t0, t1) {
                Some(json) => (200, "application/json", json),
                None => (404, "application/json", "{\"error\":\"nothing to explain\"}".into()),
            }
        }
        _ => (404, "text/plain", "try /metrics, /snapshot or /explain\n".into()),
    }
}

/// Parses `key=K&t0=A&t1=B`; `t0`/`t1` default to an unbounded span.
fn parse_explain_query(query: &str) -> Option<(u64, f64, f64)> {
    let mut key = None;
    let mut t0 = f64::NEG_INFINITY;
    let mut t1 = f64::INFINITY;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=')?;
        match k {
            "key" => key = Some(v.parse().ok()?),
            "t0" => t0 = v.parse().ok()?,
            "t1" => t1 = v.parse().ok()?,
            _ => return None,
        }
    }
    key.map(|k| (k, t0, t1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, target: &str) -> String {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(format!("GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes()).unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_snapshot_and_explain() {
        crate::global().counter("serve.test.hits").set(3);
        let explain: ExplainFn = Arc::new(|key, t0, t1| {
            (key == 7).then(|| format!("{{\"key\":{key},\"t0\":{t0},\"t1\":{t1}}}"))
        });
        let h = serve("127.0.0.1:0", Some(explain)).expect("bind");
        let addr = h.addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
        assert!(metrics.contains("text/plain; version=0.0.4"), "{metrics}");
        assert!(metrics.contains("pulse_serve_test_hits 3"), "{metrics}");

        let snap = get(addr, "/snapshot");
        assert!(snap.starts_with("HTTP/1.1 200"), "{snap}");
        assert!(snap.contains("\"serve.test.hits\""), "{snap}");

        let ex = get(addr, "/explain?key=7&t0=1&t1=2");
        assert!(ex.starts_with("HTTP/1.1 200"), "{ex}");
        assert!(ex.contains("\"key\":7"), "{ex}");
        assert!(get(addr, "/explain?key=9").starts_with("HTTP/1.1 404"));
        assert!(get(addr, "/explain?bogus=1").starts_with("HTTP/1.1 400"));
        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));
        drop(h); // must join cleanly
    }

    #[test]
    fn explain_defaults_to_unbounded_span() {
        assert_eq!(parse_explain_query("key=4"), Some((4, f64::NEG_INFINITY, f64::INFINITY)));
        assert_eq!(parse_explain_query("key=4&t0=1.5&t1=2.5"), Some((4, 1.5, 2.5)));
        assert_eq!(parse_explain_query(""), None);
        assert_eq!(parse_explain_query("t0=1"), None);
    }
}
