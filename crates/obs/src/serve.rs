//! Dependency-free HTTP serving surface for a running Pulse process.
//!
//! A blocking single-threaded listener (std::net only — the build
//! environment is offline, so no hyper/axum) exposing:
//!
//! - `GET /metrics` — Prometheus text exposition (format 0.0.4) of the
//!   process-global registry snapshot, per-shard series as `shard="i"`
//!   labels;
//! - `GET /snapshot` — the same snapshot as JSON (what `pulse_top` polls);
//! - `GET /health` — the rule evaluator's verdict as JSON: `200` with
//!   `"verdict": "ok"` when no alert rule is firing, `503` with
//!   `"verdict": "degraded"` plus the firing rules otherwise. Each request
//!   is one evaluation of the sustained-duration rules (see
//!   [`crate::health`]) — poll it to give "sustained" meaning;
//! - `GET /profile` — the violation-path profiler's self-normalizing phase
//!   breakdown as JSON (see [`crate::prof`]);
//! - `GET /explain?key=K&t0=A&t1=B` — the flight recorder's provenance
//!   tree for key `K` over stream-time `[A, B]`, as JSON. The handler is
//!   injected by the host (e.g. a closure fanning the query to the owning
//!   shard), keeping this crate decoupled from the runtime.
//!
//! One request per connection, `Connection: close` — scrape endpoints do
//! not need keep-alive, and the accept loop polls a stop flag so
//! [`ServeHandle`] (and its `Drop`) can shut the listener down cleanly.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::health::{HealthEvaluator, Rule};

/// Host-provided `/explain` handler: `(key, t0, t1)` → serialized JSON
/// report, or `None` when the key/span has nothing to explain.
pub type ExplainFn = Arc<dyn Fn(u64, f64, f64) -> Option<String> + Send + Sync>;

/// What the listener serves beyond the always-on `/metrics`, `/snapshot`,
/// `/health`, and `/profile`: the host wires `/explain` here and may
/// replace the default health rule set.
#[derive(Default)]
pub struct Routes {
    explain: Option<ExplainFn>,
    health_rules: Option<Vec<Rule>>,
}

impl Routes {
    pub fn new() -> Routes {
        Routes::default()
    }

    /// Wires the `/explain` handler (otherwise that route answers 501).
    pub fn with_explain(mut self, f: ExplainFn) -> Routes {
        self.explain = Some(f);
        self
    }

    /// Replaces [`crate::health::default_rules`] for this listener's
    /// `/health` evaluator.
    pub fn with_health_rules(mut self, rules: Vec<Rule>) -> Routes {
        self.health_rules = Some(rules);
        self
    }
}

/// Running listener; dropping it stops the serving thread.
pub struct ServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9187`, port 0 for ephemeral) and serves
/// until the returned handle is dropped. `Routes::new()` serves the four
/// built-in endpoints with default health rules and no `/explain`.
pub fn serve(addr: &str, routes: Routes) -> std::io::Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let thread = std::thread::Builder::new().name("pulse-obs-serve".into()).spawn(move || {
        let health = Mutex::new(HealthEvaluator::new(
            routes.health_rules.clone().unwrap_or_else(crate::health::default_rules),
        ));
        while !stop2.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((mut conn, _)) => {
                    let _ = handle_conn(&mut conn, routes.explain.as_ref(), &health);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    })?;
    Ok(ServeHandle { addr, stop, thread: Some(thread) })
}

fn handle_conn(
    conn: &mut TcpStream,
    explain: Option<&ExplainFn>,
    health: &Mutex<HealthEvaluator>,
) -> std::io::Result<()> {
    conn.set_nonblocking(false)?;
    conn.set_read_timeout(Some(Duration::from_secs(2)))?;
    // Only the request line matters; read until the header terminator (or
    // 4 KiB) so well-behaved clients aren't cut off mid-request.
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 512];
    let mut terminated = false;
    loop {
        let n = match conn.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") {
            terminated = true;
            break;
        }
        if buf.len() >= 4096 {
            break;
        }
    }
    if !terminated && !buf.is_empty() {
        // Drain what the client is still sending (bounded) before replying:
        // closing with unread bytes in the receive buffer makes the kernel
        // send RST, which can discard the error response in flight.
        conn.set_read_timeout(Some(Duration::from_millis(200)))?;
        let mut drained = 0usize;
        while drained < 1 << 20 {
            match conn.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => drained += n,
            }
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let line = request.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, ctype, body) = if !terminated {
        (400, "text/plain", "request too large (no header terminator in 4096 bytes)\n".into())
    } else if method != "GET" {
        (405, "text/plain", "method not allowed\n".to_string())
    } else if !target.starts_with('/') {
        (400, "text/plain", "malformed request line\n".to_string())
    } else {
        route(target, explain, health)
    };
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Not Implemented",
    };
    let resp = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    conn.write_all(resp.as_bytes())
}

fn route(
    target: &str,
    explain: Option<&ExplainFn>,
    health: &Mutex<HealthEvaluator>,
) -> (u16, &'static str, String) {
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    match path {
        "/metrics" => (
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            crate::global().snapshot().to_prometheus(),
        ),
        "/snapshot" => (200, "application/json", crate::global().snapshot().to_json()),
        "/health" => {
            let report = health.lock().unwrap_or_else(|p| p.into_inner()).evaluate_global();
            let status = if report.ok() { 200 } else { 503 };
            (status, "application/json", report.to_json())
        }
        "/profile" => (200, "application/json", crate::prof::profile_json()),
        "/explain" => {
            let Some(explain) = explain else {
                return (501, "text/plain", "explain is not wired on this process\n".into());
            };
            let Some((key, t0, t1)) = parse_explain_query(query) else {
                return (400, "text/plain", "usage: /explain?key=K&t0=A&t1=B\n".into());
            };
            match explain(key, t0, t1) {
                Some(json) => (200, "application/json", json),
                None => (404, "application/json", "{\"error\":\"nothing to explain\"}".into()),
            }
        }
        _ => (404, "text/plain", "try /metrics, /snapshot, /health, /profile or /explain\n".into()),
    }
}

/// Parses `key=K&t0=A&t1=B`; `t0`/`t1` default to an unbounded span.
fn parse_explain_query(query: &str) -> Option<(u64, f64, f64)> {
    let mut key = None;
    let mut t0 = f64::NEG_INFINITY;
    let mut t1 = f64::INFINITY;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=')?;
        match k {
            "key" => key = Some(v.parse().ok()?),
            "t0" => t0 = v.parse().ok()?,
            "t1" => t1 = v.parse().ok()?,
            _ => return None,
        }
    }
    key.map(|k| (k, t0, t1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, target: &str) -> String {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(format!("GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes()).unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        out
    }

    fn raw(addr: SocketAddr, bytes: &[u8]) -> String {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(bytes).unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_snapshot_and_explain() {
        crate::global().counter("serve.test.hits").set(3);
        let explain: ExplainFn = Arc::new(|key, t0, t1| {
            (key == 7).then(|| format!("{{\"key\":{key},\"t0\":{t0},\"t1\":{t1}}}"))
        });
        let h = serve("127.0.0.1:0", Routes::new().with_explain(explain)).expect("bind");
        let addr = h.addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
        assert!(metrics.contains("text/plain; version=0.0.4"), "{metrics}");
        assert!(metrics.contains("pulse_serve_test_hits 3"), "{metrics}");

        let snap = get(addr, "/snapshot");
        assert!(snap.starts_with("HTTP/1.1 200"), "{snap}");
        assert!(snap.contains("\"serve.test.hits\""), "{snap}");

        let ex = get(addr, "/explain?key=7&t0=1&t1=2");
        assert!(ex.starts_with("HTTP/1.1 200"), "{ex}");
        assert!(ex.contains("\"key\":7"), "{ex}");
        assert!(get(addr, "/explain?key=9").starts_with("HTTP/1.1 404"));
        assert!(get(addr, "/explain?bogus=1").starts_with("HTTP/1.1 400"));
        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));
        drop(h); // must join cleanly
    }

    #[test]
    fn serves_health_and_profile() {
        // An isolated rule set that never fires keeps this test independent
        // of whatever other tests put in the global registry.
        let quiet =
            vec![Rule::new("never", crate::health::Signal::QueueDepthMax, f64::INFINITY, 1)];
        let h = serve("127.0.0.1:0", Routes::new().with_health_rules(quiet)).expect("bind");
        let health = get(h.addr(), "/health");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        assert!(health.contains("\"verdict\": \"ok\""), "{health}");
        assert!(health.contains("\"rules\""), "{health}");
        let profile = get(h.addr(), "/profile");
        assert!(profile.starts_with("HTTP/1.1 200"), "{profile}");
        assert!(profile.contains("\"phases\""), "{profile}");
        assert!(profile.contains("\"remodel_fit\""), "{profile}");
    }

    #[test]
    fn health_flips_to_503_when_rule_fires() {
        // Drive the real queue-depth gauge family through a label no other
        // test uses; sustain=1 so one poll per state suffices.
        let depth =
            crate::global().counter(&crate::labeled("shard.queue_depth", &[("shard", "t503")]));
        depth.set(0);
        let rules = vec![Rule::new("test_saturated", crate::health::Signal::QueueDepthMax, 4.0, 1)];
        let h = serve("127.0.0.1:0", Routes::new().with_health_rules(rules)).expect("bind");
        let ok = get(h.addr(), "/health");
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        depth.set(4);
        let degraded = get(h.addr(), "/health");
        assert!(degraded.starts_with("HTTP/1.1 503"), "{degraded}");
        assert!(degraded.contains("\"verdict\": \"degraded\""), "{degraded}");
        assert!(degraded.contains("test_saturated"), "{degraded}");
        depth.set(0);
        let recovered = get(h.addr(), "/health");
        assert!(recovered.starts_with("HTTP/1.1 200"), "{recovered}");
    }

    #[test]
    fn error_paths_malformed_oversized_and_bad_method() {
        let h = serve("127.0.0.1:0", Routes::new()).expect("bind");
        let addr = h.addr();

        // Malformed request line: target without a leading slash.
        let bad = raw(addr, b"GET metrics HTTP/1.1\r\n\r\n");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        let garbage = raw(addr, b"garbage\r\n\r\n");
        assert!(
            garbage.starts_with("HTTP/1.1 400") || garbage.starts_with("HTTP/1.1 405"),
            "{garbage}"
        );

        // Unknown route → 404 with a hint.
        let nf = get(addr, "/definitely-not-a-route");
        assert!(nf.starts_with("HTTP/1.1 404"), "{nf}");
        assert!(nf.contains("/health"), "404 body lists routes: {nf}");

        // Non-GET → 405.
        let post = raw(addr, b"POST /metrics HTTP/1.1\r\n\r\n");
        assert!(post.starts_with("HTTP/1.1 405"), "{post}");

        // Oversized request: 8 KiB with no header terminator → 400.
        let mut big = Vec::from(&b"GET /metrics HTTP/1.1\r\n"[..]);
        while big.len() < 8192 {
            big.extend_from_slice(b"X-Filler: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        let over = raw(addr, &big);
        assert!(over.starts_with("HTTP/1.1 400"), "{over}");
        assert!(over.contains("too large"), "{over}");
    }

    #[test]
    fn concurrent_requests_all_answered() {
        crate::global().counter("serve.test.concurrent").set(1);
        let h = serve("127.0.0.1:0", Routes::new()).expect("bind");
        let addr = h.addr();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let target = match i % 3 {
                        0 => "/metrics",
                        1 => "/snapshot",
                        _ => "/profile",
                    };
                    get(addr, target)
                })
            })
            .collect();
        for t in threads {
            let resp = t.join().expect("client thread");
            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        }
    }

    #[test]
    fn explain_defaults_to_unbounded_span() {
        assert_eq!(parse_explain_query("key=4"), Some((4, f64::NEG_INFINITY, f64::INFINITY)));
        assert_eq!(parse_explain_query("key=4&t0=1.5&t1=2.5"), Some((4, 1.5, 2.5)));
        assert_eq!(parse_explain_query(""), None);
        assert_eq!(parse_explain_query("t0=1"), None);
    }
}
