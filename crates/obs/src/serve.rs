//! Dependency-free HTTP serving surface for a running Pulse process.
//!
//! A blocking single-threaded listener (std::net only — the build
//! environment is offline, so no hyper/axum) exposing:
//!
//! - `GET /metrics` — Prometheus text exposition (format 0.0.4) of the
//!   process-global registry snapshot, per-shard series as `shard="i"`
//!   labels;
//! - `GET /snapshot` — the same snapshot as JSON (what `pulse_top` polls);
//! - `GET /health` — the rule evaluator's verdict as JSON: `200` with
//!   `"verdict": "ok"` when no alert rule is firing, `503` with
//!   `"verdict": "degraded"` plus the firing rules otherwise. Each request
//!   is one evaluation of the sustained-duration rules (see
//!   [`crate::health`]) — poll it to give "sustained" meaning;
//! - `GET /profile` — the violation-path profiler's self-normalizing phase
//!   breakdown as JSON (see [`crate::prof`]);
//! - `GET /explain?key=K&t0=A&t1=B` — the flight recorder's provenance
//!   tree for key `K` over stream-time `[A, B]`, as JSON. The handler is
//!   injected by the host (e.g. a closure fanning the query to the owning
//!   shard), keeping this crate decoupled from the runtime;
//! - `GET /timeseries?metric=M&since=S` — telemetry history from the
//!   process-global [`crate::timeseries`] store: the sampled series of
//!   `M` (family-summed across `{shard="i"}` variants unless an exact
//!   labeled name is given) from store-relative second `S`, as JSON.
//!   `last=N` trims to the newest N points;
//! - `GET /watch?interval_ms=I&metric=P&frames=N` — a Server-Sent-Events
//!   live stream of registry counter deltas every `I` ms (`data: {...}`
//!   frames, first frame carries current totals). Served from a
//!   dedicated per-connection thread so a slow or idle watcher blocks
//!   neither the accept loop nor the collector;
//! - `GET /trace.json` — the flight recorder rings as Chrome Trace
//!   Event JSON (see [`crate::export`]), host-injected like `/explain`.
//!
//! One request per connection, `Connection: close` — scrape endpoints do
//! not need keep-alive, and the accept loop polls a stop flag so
//! [`ServeHandle`] (and its `Drop`) can shut the listener down cleanly
//! (`/watch` streams run on detached threads and end with their client).

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::health::{HealthEvaluator, Rule};
use serde::Value;

/// Host-provided `/explain` handler: `(key, t0, t1)` → serialized JSON
/// report, or `None` when the key/span has nothing to explain.
pub type ExplainFn = Arc<dyn Fn(u64, f64, f64) -> Option<String> + Send + Sync>;

/// Host-provided `/trace.json` handler: `()` → Chrome Trace Event JSON
/// (see [`crate::export::chrome_trace`]), or `None` when no recorder is
/// reachable (tracing off, shards gone).
pub type TraceFn = Arc<dyn Fn() -> Option<String> + Send + Sync>;

/// Host-provided `/audit` handler: `()` → guarantee-audit summary JSON
/// (see [`crate::audit::AuditLedger::summary_json`]), or `None` when no
/// auditor is running (audit_rate = 0).
pub type AuditFn = Arc<dyn Fn() -> Option<String> + Send + Sync>;

/// What the listener serves beyond the always-on endpoints: the host
/// wires `/explain` and `/trace.json` here and may replace the default
/// health rule set.
#[derive(Default)]
pub struct Routes {
    explain: Option<ExplainFn>,
    trace: Option<TraceFn>,
    audit: Option<AuditFn>,
    health_rules: Option<Vec<Rule>>,
}

impl Routes {
    pub fn new() -> Routes {
        Routes::default()
    }

    /// Wires the `/explain` handler (otherwise that route answers 501).
    pub fn with_explain(mut self, f: ExplainFn) -> Routes {
        self.explain = Some(f);
        self
    }

    /// Wires the `/trace.json` handler (otherwise that route answers 501).
    pub fn with_trace(mut self, f: TraceFn) -> Routes {
        self.trace = Some(f);
        self
    }

    /// Wires the `/audit` handler (otherwise that route answers 501).
    pub fn with_audit(mut self, f: AuditFn) -> Routes {
        self.audit = Some(f);
        self
    }

    /// Replaces [`crate::health::default_rules`] for this listener's
    /// `/health` evaluator.
    pub fn with_health_rules(mut self, rules: Vec<Rule>) -> Routes {
        self.health_rules = Some(rules);
        self
    }
}

/// Running listener; dropping it stops the serving thread.
pub struct ServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9187`, port 0 for ephemeral) and serves
/// until the returned handle is dropped. `Routes::new()` serves the four
/// built-in endpoints with default health rules and no `/explain`.
pub fn serve(addr: &str, routes: Routes) -> std::io::Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let thread = std::thread::Builder::new().name("pulse-obs-serve".into()).spawn(move || {
        let health = Mutex::new(HealthEvaluator::new(
            routes.health_rules.clone().unwrap_or_else(crate::health::default_rules),
        ));
        while !stop2.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((conn, _)) => {
                    let _ = handle_conn(conn, &routes, &health);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    })?;
    Ok(ServeHandle { addr, stop, thread: Some(thread) })
}

fn handle_conn(
    mut conn: TcpStream,
    routes: &Routes,
    health: &Mutex<HealthEvaluator>,
) -> std::io::Result<()> {
    conn.set_nonblocking(false)?;
    conn.set_read_timeout(Some(Duration::from_secs(2)))?;
    // Only the request line matters; read until the header terminator (or
    // 4 KiB) so well-behaved clients aren't cut off mid-request.
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 512];
    let mut terminated = false;
    loop {
        let n = match conn.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") {
            terminated = true;
            break;
        }
        if buf.len() >= 4096 {
            break;
        }
    }
    if !terminated && !buf.is_empty() {
        // Drain what the client is still sending (bounded) before replying:
        // closing with unread bytes in the receive buffer makes the kernel
        // send RST, which can discard the error response in flight.
        conn.set_read_timeout(Some(Duration::from_millis(200)))?;
        let mut drained = 0usize;
        while drained < 1 << 20 {
            match conn.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => drained += n,
            }
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let line = request.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    // `/watch` holds its connection open for the life of the stream, so it
    // moves to a dedicated thread; everything else answers inline.
    if terminated && method == "GET" {
        let (path, query) = target.split_once('?').unwrap_or((target, ""));
        if path == "/watch" {
            let params = WatchParams::parse(query);
            std::thread::Builder::new()
                .name("pulse-obs-watch".into())
                .spawn(move || stream_watch(conn, params))?;
            return Ok(());
        }
    }
    let (status, ctype, body) = if !terminated {
        (400, "text/plain", "request too large (no header terminator in 4096 bytes)\n".into())
    } else if method != "GET" {
        (405, "text/plain", "method not allowed\n".to_string())
    } else if !target.starts_with('/') {
        (400, "text/plain", "malformed request line\n".to_string())
    } else {
        route(target, routes, health)
    };
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Not Implemented",
    };
    let resp = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    conn.write_all(resp.as_bytes())
}

fn route(
    target: &str,
    routes: &Routes,
    health: &Mutex<HealthEvaluator>,
) -> (u16, &'static str, String) {
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    match path {
        "/metrics" => (
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            crate::global().snapshot().to_prometheus(),
        ),
        "/snapshot" => (200, "application/json", crate::global().snapshot().to_json()),
        "/health" => {
            let report = health.lock().unwrap_or_else(|p| p.into_inner()).evaluate_global();
            let status = if report.ok() { 200 } else { 503 };
            (status, "application/json", report.to_json())
        }
        "/profile" => (200, "application/json", crate::prof::profile_json()),
        "/timeseries" => timeseries_response(query),
        "/trace.json" => {
            let Some(trace) = routes.trace.as_ref() else {
                return (501, "text/plain", "trace export is not wired on this process\n".into());
            };
            match trace() {
                Some(json) => (200, "application/json", json),
                None => (404, "application/json", "{\"error\":\"no trace recorded\"}".into()),
            }
        }
        "/audit" => {
            let Some(audit) = routes.audit.as_ref() else {
                return (501, "text/plain", "guarantee audit is not wired on this process\n".into());
            };
            match audit() {
                Some(json) => (200, "application/json", json),
                None => (404, "application/json", "{\"error\":\"auditor is off\"}".into()),
            }
        }
        "/explain" => {
            let Some(explain) = routes.explain.as_ref() else {
                return (501, "text/plain", "explain is not wired on this process\n".into());
            };
            let Some((key, t0, t1)) = parse_explain_query(query) else {
                return (400, "text/plain", "usage: /explain?key=K&t0=A&t1=B\n".into());
            };
            match explain(key, t0, t1) {
                Some(json) => (200, "application/json", json),
                None => (404, "application/json", "{\"error\":\"nothing to explain\"}".into()),
            }
        }
        _ => (
            404,
            "text/plain",
            "try /metrics, /snapshot, /health, /profile, /timeseries, /watch, /trace.json, /audit or /explain\n"
                .into(),
        ),
    }
}

/// `GET /timeseries?metric=M&since=S[&last=N]` against the global store.
fn timeseries_response(query: &str) -> (u16, &'static str, String) {
    let mut metric = None;
    let mut since = 0.0f64;
    let mut last = None;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some(("metric", v)) => metric = Some(v.to_string()),
            Some(("since", v)) => match v.parse() {
                Ok(s) => since = s,
                Err(_) => return (400, "text/plain", "since must be a number\n".into()),
            },
            Some(("last", v)) => match v.parse() {
                Ok(n) => last = Some(n),
                Err(_) => return (400, "text/plain", "last must be an integer\n".into()),
            },
            _ => return (400, "text/plain", "usage: /timeseries?metric=M&since=S&last=N\n".into()),
        }
    }
    let Some(metric) = metric else {
        return (400, "text/plain", "usage: /timeseries?metric=M&since=S&last=N\n".into());
    };
    let store = crate::timeseries::store();
    let mut points = store.series(&metric, since);
    if let Some(n) = last {
        if points.len() > n {
            points.drain(..points.len() - n);
        }
    }
    let body = serde_json::to_string(&Value::Object(vec![
        ("metric".into(), Value::String(metric)),
        ("now".into(), Value::F64(store.now())),
        ("samples".into(), Value::U64(points.len() as u64)),
        (
            "points".into(),
            Value::Array(
                points
                    .iter()
                    .map(|p| Value::Array(vec![Value::F64(p.t), Value::F64(p.v)]))
                    .collect(),
            ),
        ),
    ]))
    .expect("timeseries serialization is infallible");
    (200, "application/json", body)
}

/// Parsed `/watch` parameters.
struct WatchParams {
    /// Milliseconds between frames (floor 10).
    interval_ms: u64,
    /// Counter-name prefix filter (empty = all).
    metric: String,
    /// Stop after this many frames; 0 = stream until the client hangs up.
    frames: u64,
}

impl WatchParams {
    fn parse(query: &str) -> WatchParams {
        let mut p = WatchParams { interval_ms: 1000, metric: String::new(), frames: 0 };
        for pair in query.split('&').filter(|s| !s.is_empty()) {
            match pair.split_once('=') {
                Some(("interval_ms", v)) => {
                    p.interval_ms = v.parse().unwrap_or(1000).max(10);
                }
                Some(("metric", v)) => p.metric = v.to_string(),
                Some(("frames", v)) => p.frames = v.parse().unwrap_or(0),
                _ => {}
            }
        }
        p
    }
}

/// The `/watch` SSE loop, run on its own thread: every interval, snapshot
/// the global registry and push the counter deltas as one `data:` frame.
/// The first frame carries current totals (delta against zero). Ends when
/// the client disconnects, a write stalls past the timeout, or the
/// requested frame count is reached.
fn stream_watch(mut conn: TcpStream, params: WatchParams) {
    let _ = conn.set_nonblocking(false);
    let _ = conn.set_write_timeout(Some(Duration::from_secs(10)));
    let header = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n";
    if conn.write_all(header.as_bytes()).is_err() {
        return;
    }
    let mut prev: Option<crate::Snapshot> = None;
    let mut seq = 0u64;
    loop {
        let snap = crate::global().snapshot();
        let delta = match &prev {
            Some(p) => snap.delta(p),
            None => snap.clone(),
        };
        let counters: Vec<(String, Value)> = delta
            .counters
            .iter()
            .filter(|(n, v)| n.starts_with(&params.metric) && (*v > 0 || prev.is_none()))
            .map(|(n, v)| (n.clone(), Value::U64(*v)))
            .collect();
        let frame = Value::Object(vec![
            ("seq".into(), Value::U64(seq)),
            ("t".into(), Value::F64(crate::timeseries::store().now())),
            ("counters".into(), Value::Object(counters)),
        ]);
        let payload = format!(
            "data: {}\n\n",
            serde_json::to_string(&frame).expect("frame serialization is infallible")
        );
        if conn.write_all(payload.as_bytes()).is_err() {
            return;
        }
        prev = Some(snap);
        seq += 1;
        if params.frames > 0 && seq >= params.frames {
            return;
        }
        std::thread::sleep(Duration::from_millis(params.interval_ms));
    }
}

/// Parses `key=K&t0=A&t1=B`; `t0`/`t1` default to an unbounded span.
fn parse_explain_query(query: &str) -> Option<(u64, f64, f64)> {
    let mut key = None;
    let mut t0 = f64::NEG_INFINITY;
    let mut t1 = f64::INFINITY;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=')?;
        match k {
            "key" => key = Some(v.parse().ok()?),
            "t0" => t0 = v.parse().ok()?,
            "t1" => t1 = v.parse().ok()?,
            _ => return None,
        }
    }
    key.map(|k| (k, t0, t1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, target: &str) -> String {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(format!("GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes()).unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        out
    }

    fn raw(addr: SocketAddr, bytes: &[u8]) -> String {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(bytes).unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_snapshot_and_explain() {
        crate::global().counter("serve.test.hits").set(3);
        let explain: ExplainFn = Arc::new(|key, t0, t1| {
            (key == 7).then(|| format!("{{\"key\":{key},\"t0\":{t0},\"t1\":{t1}}}"))
        });
        let h = serve("127.0.0.1:0", Routes::new().with_explain(explain)).expect("bind");
        let addr = h.addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
        assert!(metrics.contains("text/plain; version=0.0.4"), "{metrics}");
        assert!(metrics.contains("pulse_serve_test_hits 3"), "{metrics}");

        let snap = get(addr, "/snapshot");
        assert!(snap.starts_with("HTTP/1.1 200"), "{snap}");
        assert!(snap.contains("\"serve.test.hits\""), "{snap}");

        let ex = get(addr, "/explain?key=7&t0=1&t1=2");
        assert!(ex.starts_with("HTTP/1.1 200"), "{ex}");
        assert!(ex.contains("\"key\":7"), "{ex}");
        assert!(get(addr, "/explain?key=9").starts_with("HTTP/1.1 404"));
        assert!(get(addr, "/explain?bogus=1").starts_with("HTTP/1.1 400"));
        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));
        drop(h); // must join cleanly
    }

    #[test]
    fn serves_audit_summary() {
        // Unwired → 501.
        let bare = serve("127.0.0.1:0", Routes::new()).expect("bind");
        assert!(get(bare.addr(), "/audit").starts_with("HTTP/1.1 501"));
        drop(bare);

        let mut ledger = crate::audit::AuditLedger::default();
        ledger.check(7, 1.0, 0.2, 1.0);
        let audit: AuditFn = Arc::new(move || Some(ledger.summary_json(8)));
        let h = serve("127.0.0.1:0", Routes::new().with_audit(audit)).expect("bind");
        let resp = get(h.addr(), "/audit");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("\"audited_keys\":1"), "{resp}");
        assert!(resp.contains("\"breaches\":0"), "{resp}");

        // Wired but off → 404.
        let off: AuditFn = Arc::new(|| None);
        let h2 = serve("127.0.0.1:0", Routes::new().with_audit(off)).expect("bind");
        assert!(get(h2.addr(), "/audit").starts_with("HTTP/1.1 404"));
    }

    #[test]
    fn serves_health_and_profile() {
        // An isolated rule set that never fires keeps this test independent
        // of whatever other tests put in the global registry.
        let quiet =
            vec![Rule::new("never", crate::health::Signal::QueueDepthMax, f64::INFINITY, 1)];
        let h = serve("127.0.0.1:0", Routes::new().with_health_rules(quiet)).expect("bind");
        let health = get(h.addr(), "/health");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        assert!(health.contains("\"verdict\": \"ok\""), "{health}");
        assert!(health.contains("\"rules\""), "{health}");
        let profile = get(h.addr(), "/profile");
        assert!(profile.starts_with("HTTP/1.1 200"), "{profile}");
        assert!(profile.contains("\"phases\""), "{profile}");
        assert!(profile.contains("\"remodel_fit\""), "{profile}");
    }

    #[test]
    fn health_flips_to_503_when_rule_fires() {
        // Drive the real queue-depth gauge family through a label no other
        // test uses; sustain=1 so one poll per state suffices.
        let depth =
            crate::global().counter(&crate::labeled("shard.queue_depth", &[("shard", "t503")]));
        depth.set(0);
        let rules = vec![Rule::new("test_saturated", crate::health::Signal::QueueDepthMax, 4.0, 1)];
        let h = serve("127.0.0.1:0", Routes::new().with_health_rules(rules)).expect("bind");
        let ok = get(h.addr(), "/health");
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        depth.set(4);
        let degraded = get(h.addr(), "/health");
        assert!(degraded.starts_with("HTTP/1.1 503"), "{degraded}");
        assert!(degraded.contains("\"verdict\": \"degraded\""), "{degraded}");
        assert!(degraded.contains("test_saturated"), "{degraded}");
        depth.set(0);
        let recovered = get(h.addr(), "/health");
        assert!(recovered.starts_with("HTTP/1.1 200"), "{recovered}");
    }

    #[test]
    fn error_paths_malformed_oversized_and_bad_method() {
        let h = serve("127.0.0.1:0", Routes::new()).expect("bind");
        let addr = h.addr();

        // Malformed request line: target without a leading slash.
        let bad = raw(addr, b"GET metrics HTTP/1.1\r\n\r\n");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        let garbage = raw(addr, b"garbage\r\n\r\n");
        assert!(
            garbage.starts_with("HTTP/1.1 400") || garbage.starts_with("HTTP/1.1 405"),
            "{garbage}"
        );

        // Unknown route → 404 with a hint.
        let nf = get(addr, "/definitely-not-a-route");
        assert!(nf.starts_with("HTTP/1.1 404"), "{nf}");
        assert!(nf.contains("/health"), "404 body lists routes: {nf}");

        // Non-GET → 405.
        let post = raw(addr, b"POST /metrics HTTP/1.1\r\n\r\n");
        assert!(post.starts_with("HTTP/1.1 405"), "{post}");

        // Oversized request: 8 KiB with no header terminator → 400.
        let mut big = Vec::from(&b"GET /metrics HTTP/1.1\r\n"[..]);
        while big.len() < 8192 {
            big.extend_from_slice(b"X-Filler: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        let over = raw(addr, &big);
        assert!(over.starts_with("HTTP/1.1 400"), "{over}");
        assert!(over.contains("too large"), "{over}");
    }

    #[test]
    fn concurrent_requests_all_answered() {
        crate::global().counter("serve.test.concurrent").set(1);
        let h = serve("127.0.0.1:0", Routes::new()).expect("bind");
        let addr = h.addr();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let target = match i % 3 {
                        0 => "/metrics",
                        1 => "/snapshot",
                        _ => "/profile",
                    };
                    get(addr, target)
                })
            })
            .collect();
        for t in threads {
            let resp = t.join().expect("client thread");
            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        }
    }

    #[test]
    fn explain_defaults_to_unbounded_span() {
        assert_eq!(parse_explain_query("key=4"), Some((4, f64::NEG_INFINITY, f64::INFINITY)));
        assert_eq!(parse_explain_query("key=4&t0=1.5&t1=2.5"), Some((4, 1.5, 2.5)));
        assert_eq!(parse_explain_query(""), None);
        assert_eq!(parse_explain_query("t0=1"), None);
    }
}
