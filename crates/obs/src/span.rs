//! Lightweight spans: RAII timers that record nanosecond durations into
//! the global registry, plus an optional ring-buffer event log of
//! completed spans for post-mortem inspection.
//!
//! Spans branch on the global enabled flag at entry — when observability
//! is off, `span!` costs one relaxed atomic load and carries no timer.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::Serialize;

/// One completed span, as retained by the event log.
#[derive(Debug, Clone, Serialize)]
pub struct Event {
    /// Monotonic sequence number (global across all spans).
    pub seq: u64,
    /// Span name (also the histogram it recorded into).
    pub name: String,
    /// Optional subject key (stream key, segment id, …).
    pub key: Option<u64>,
    /// Duration in nanoseconds.
    pub ns: u64,
}

/// Fixed-capacity ring buffer of recent span events.
pub struct EventLog {
    buf: Mutex<(VecDeque<Event>, usize)>,
    seq: AtomicU64,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog { buf: Mutex::new((VecDeque::new(), 0)), seq: AtomicU64::new(0) }
    }
}

impl EventLog {
    /// Sets the retention capacity; zero (the default) disables retention.
    pub fn set_capacity(&self, cap: usize) {
        let mut g = self.buf.lock().unwrap();
        g.1 = cap;
        while g.0.len() > cap {
            g.0.pop_front();
        }
    }

    pub fn push(&self, name: impl Into<String>, key: Option<u64>, ns: u64) {
        let mut g = self.buf.lock().unwrap();
        let cap = g.1;
        if cap == 0 {
            return;
        }
        if g.0.len() == cap {
            g.0.pop_front();
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        g.0.push_back(Event { seq, name: name.into(), key, ns });
    }

    /// Oldest-first copy of the retained events.
    pub fn drain(&self) -> Vec<Event> {
        let mut g = self.buf.lock().unwrap();
        g.0.drain(..).collect()
    }

    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// RAII span: on drop, records elapsed ns into the global registry's
/// histogram named after the span, and appends to the event log (if that
/// has capacity). Inert when observability is disabled at entry.
pub struct SpanGuard {
    active: Option<(Instant, &'static str, Option<u64>)>,
}

impl SpanGuard {
    pub fn enter(name: &'static str, key: Option<u64>) -> SpanGuard {
        if crate::enabled() {
            SpanGuard { active: Some((Instant::now(), name, key)) }
        } else {
            SpanGuard { active: None }
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((start, name, key)) = self.active.take() {
            let ns = start.elapsed().as_nanos() as u64;
            crate::global().histogram(name).record(ns);
            crate::events().push(name, key, ns);
        }
    }
}

/// Opens a span recording into histogram `$name` (with an optional `u64`
/// subject key logged to the event ring). Bind the result:
/// `let _span = obs::span!("runtime.solve", key);`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name, None)
    };
    ($name:expr, $key:expr) => {
        $crate::SpanGuard::enter($name, Some($key))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_evicts_oldest() {
        let log = EventLog::default();
        log.push("dropped-while-disabled", None, 1);
        assert!(log.is_empty(), "zero capacity retains nothing");
        log.set_capacity(3);
        for i in 0..5 {
            log.push("e", Some(i), i);
        }
        let events = log.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].key, Some(2), "oldest two evicted");
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn disabled_spans_are_inert() {
        crate::set_enabled(false);
        {
            let _s = crate::span!("obs.test.disabled_span");
        }
        assert_eq!(crate::global().histogram("obs.test.disabled_span").count(), 0);
    }

    #[test]
    fn enabled_spans_record() {
        crate::set_enabled(true);
        {
            let _s = crate::span!("obs.test.enabled_span", 42u64);
            std::hint::black_box(1 + 1);
        }
        crate::set_enabled(false);
        assert_eq!(crate::global().histogram("obs.test.enabled_span").count(), 1);
    }
}
