//! Metric primitives and the hierarchical registry.
//!
//! Counters and histograms are lock-free on the record path (relaxed
//! atomics); the registry maps hierarchical dotted names
//! (`runtime.violations`, `cops.join.systems_solved`) to shared handles.
//! Handles are `Arc`s — resolve once, then record with no map lookup.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::snapshot::{HistogramSnapshot, KeyedSnapshot, Snapshot};

/// Monotonic event counter. Cloning shares the underlying cell.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — for exporting externally-accumulated totals
    /// (e.g. an operator's `OpMetrics`) into the registry.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two histogram buckets. Bucket `i > 0` counts values
/// in `[2^(i−1), 2^i)`; bucket 0 counts zeros. The top bucket absorbs
/// everything ≥ 2^(BUCKETS−2) (≈ 1.2 minutes in nanoseconds).
pub const BUCKETS: usize = 37;

struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Fixed-bucket latency histogram (nanosecond convention). Cloning shares
/// the underlying cells.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

/// Bucket index for a recorded value.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket (`u64::MAX` for the overflow bucket).
pub fn bucket_upper(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    pub fn record(&self, v: u64) {
        let c = &self.0;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// RAII timer recording elapsed nanoseconds into this histogram on
    /// drop — the zero-lookup path for hot spans.
    pub fn timer(&self) -> HistTimer {
        HistTimer { hist: self.clone(), start: std::time::Instant::now() }
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let buckets: Vec<u64> = self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        HistogramSnapshot::from_buckets(name.to_string(), buckets, self.sum(), self.max())
    }
}

/// Times a region and records it into a [`Histogram`] when dropped.
pub struct HistTimer {
    hist: Histogram,
    start: std::time::Instant,
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_nanos() as u64);
    }
}

/// A counter partitioned by a `u64` key (e.g. violations per stream key).
/// Mutex-guarded — intended for slow paths only.
#[derive(Clone, Default)]
pub struct KeyedCounter(Arc<Mutex<BTreeMap<u64, u64>>>);

impl KeyedCounter {
    pub fn inc(&self, key: u64) {
        *self.0.lock().unwrap().entry(key).or_insert(0) += 1;
    }

    pub fn get(&self, key: u64) -> u64 {
        self.0.lock().unwrap().get(&key).copied().unwrap_or(0)
    }

    pub fn total(&self) -> u64 {
        self.0.lock().unwrap().values().sum()
    }

    fn snapshot(&self, name: &str) -> KeyedSnapshot {
        let m = self.0.lock().unwrap();
        KeyedSnapshot {
            name: name.to_string(),
            total: m.values().sum(),
            by_key: m.iter().map(|(k, v)| (*k, *v)).collect(),
        }
    }
}

/// Canonical labeled-metric name: `base{k="v",k2="v2"}`. Labels ride inside
/// the registry key, so the existing name-keyed machinery (snapshots,
/// deltas, lookups) works unchanged; the Prometheus exporter re-parses the
/// block. Label order follows the argument order — callers must pass labels
/// in a stable order for `base{…}` strings to compare equal.
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let mut out = String::with_capacity(base.len() + 16 * labels.len());
    out.push_str(base);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        // Escape per the Prometheus text format so values round-trip.
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Registry of named metrics. `counter`/`histogram`/`keyed_counter` are
/// get-or-create; reads take a shared lock, creation an exclusive one.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Counter>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
    keyed: RwLock<BTreeMap<String, KeyedCounter>>,
}

fn get_or_create<T: Clone + Default>(map: &RwLock<BTreeMap<String, T>>, name: &str) -> T {
    if let Some(v) = map.read().unwrap().get(name) {
        return v.clone();
    }
    map.write().unwrap().entry(name.to_string()).or_default().clone()
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &str) -> Counter {
        get_or_create(&self.counters, name)
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        get_or_create(&self.histograms, name)
    }

    pub fn keyed_counter(&self, name: &str) -> KeyedCounter {
        get_or_create(&self.keyed, name)
    }

    /// Consistent-enough point-in-time view of every metric (each cell is
    /// read with relaxed ordering; cross-metric skew is possible while
    /// recording concurrently).
    pub fn snapshot(&self) -> Snapshot {
        let counters =
            self.counters.read().unwrap().iter().map(|(k, v)| (k.clone(), v.get())).collect();
        let histograms =
            self.histograms.read().unwrap().iter().map(|(k, v)| v.snapshot(k)).collect();
        let keyed = self.keyed.read().unwrap().iter().map(|(k, v)| v.snapshot(k)).collect();
        Snapshot { counters, histograms, keyed }
    }

    /// Resets every metric to zero (counters and histograms keep their
    /// registered names; handles held by callers stay valid).
    pub fn reset(&self) {
        for c in self.counters.read().unwrap().values() {
            c.set(0);
        }
        for h in self.histograms.read().unwrap().values() {
            let core = &h.0;
            for b in &core.buckets {
                b.store(0, Ordering::Relaxed);
            }
            core.count.store(0, Ordering::Relaxed);
            core.sum.store(0, Ordering::Relaxed);
            core.max.store(0, Ordering::Relaxed);
        }
        for k in self.keyed.read().unwrap().values() {
            k.0.lock().unwrap().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x.y");
        let b = reg.counter("x.y");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter("x.y").get(), 5);
        a.set(2);
        assert_eq!(b.get(), 2);
    }

    #[test]
    fn bucket_boundaries() {
        // Bucket 0 is exactly zero; bucket i>0 covers [2^(i-1), 2^i).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Uppers are inclusive and align with the index function.
        for i in 1..BUCKETS - 1 {
            let hi = bucket_upper(i);
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
            assert_eq!(bucket_index(hi + 1), i + 1);
        }
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_counts_and_stats() {
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.max(), 1000);
        let snap = h.snapshot("t");
        assert_eq!(snap.count, 6);
        assert_eq!(snap.buckets.iter().map(|(_, c)| c).sum::<u64>(), 6);
    }

    #[test]
    fn keyed_counter_partitions() {
        let k = KeyedCounter::default();
        k.inc(7);
        k.inc(7);
        k.inc(9);
        assert_eq!(k.get(7), 2);
        assert_eq!(k.get(9), 1);
        assert_eq!(k.get(8), 0);
        assert_eq!(k.total(), 3);
    }

    #[test]
    fn labeled_names_encode_and_escape() {
        assert_eq!(labeled("runtime.tuples_in", &[]), "runtime.tuples_in");
        assert_eq!(
            labeled("runtime.tuples_in", &[("shard", "3")]),
            "runtime.tuples_in{shard=\"3\"}"
        );
        assert_eq!(
            labeled("x", &[("a", "1"), ("b", "q\"uo\\te")]),
            "x{a=\"1\",b=\"q\\\"uo\\\\te\"}"
        );
        // Labeled and unlabeled names are distinct registry entries.
        let reg = MetricsRegistry::new();
        reg.counter("c").set(1);
        reg.counter(&labeled("c", &[("shard", "0")])).set(2);
        let s = reg.snapshot();
        assert_eq!(s.counter("c"), Some(1));
        assert_eq!(s.counter("c{shard=\"0\"}"), Some(2));
    }

    #[test]
    fn reset_zeroes_everything() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(10);
        reg.histogram("h").record(5);
        reg.keyed_counter("k").inc(1);
        reg.reset();
        assert_eq!(reg.counter("a").get(), 0);
        assert_eq!(reg.histogram("h").count(), 0);
        assert_eq!(reg.keyed_counter("k").total(), 0);
    }
}
