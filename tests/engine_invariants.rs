//! Property-based invariants of the engine datatypes and continuous
//! operators, on randomized inputs.

use proptest::prelude::*;
use pulse::core::{lineage, Binding, CFilter, CMinMax, COperator, CSumAvg, Sampler};
use pulse::math::{CmpOp, Poly, Span};
use pulse::model::{AttrKind, Expr, Piecewise, Pred, Schema, Segment};

fn xschema() -> Schema {
    Schema::of(&[("x", AttrKind::Modeled)])
}

prop_compose! {
    /// A chain of contiguous linear segments starting at t=0.
    fn seg_chain(max_segs: usize)(
        lens in prop::collection::vec(0.5..5.0_f64, 1..=max_segs),
        icpts in prop::collection::vec(-10.0..10.0_f64, 10),
        slopes in prop::collection::vec(-3.0..3.0_f64, 10),
    ) -> Vec<Segment> {
        let mut out = Vec::new();
        let mut t = 0.0;
        for (i, len) in lens.iter().enumerate() {
            let icpt = icpts[i % icpts.len()];
            let slope = slopes[i % slopes.len()];
            out.push(Segment::single(
                1,
                Span::new(t, t + len),
                // Anchor the line so the value at the segment start is icpt.
                Poly::linear(icpt - slope * t, slope),
            ));
            t += len;
        }
        out
    }
}

proptest! {
    /// Piecewise insert keeps pieces sorted and non-overlapping under
    /// arbitrary (possibly overlapping) insertion order.
    #[test]
    fn piecewise_stays_sorted_disjoint(
        spans in prop::collection::vec((0.0..50.0_f64, 0.1..10.0_f64), 1..20)
    ) {
        let mut pw = Piecewise::new();
        for (i, (lo, len)) in spans.iter().enumerate() {
            pw.insert(Segment::single(
                0,
                Span::new(*lo, lo + len),
                Poly::constant(i as f64),
            ));
        }
        let segs = pw.segments();
        for w in segs.windows(2) {
            prop_assert!(w[0].span.lo <= w[1].span.lo + 1e-9, "sorted");
            prop_assert!(w[0].span.hi <= w[1].span.lo + 1e-6, "disjoint");
        }
        // The most recent covering insert wins at any covered point.
        for (i, (lo, len)) in spans.iter().enumerate() {
            let mid = lo + len / 2.0;
            // Find the last span covering mid.
            let winner = spans
                .iter()
                .enumerate()
                .filter(|(_, (l, n))| mid >= *l && mid < l + n)
                .map(|(j, _)| j)
                .next_back();
            if winner == Some(i) {
                prop_assert_eq!(pw.eval(0, mid), Some(i as f64));
            }
        }
    }

    /// Sampled tuples stay inside their segment spans and reproduce the
    /// model exactly.
    #[test]
    fn sampler_matches_models(
        lo in 0.0..100.0_f64,
        len in 0.1..20.0_f64,
        icpt in -50.0..50.0_f64,
        slope in -5.0..5.0_f64,
        rate in 0.5..50.0_f64,
    ) {
        let seg = Segment::single(3, Span::new(lo, lo + len), Poly::linear(icpt, slope));
        let tuples = Sampler::new(rate).sample_segment(&seg);
        for t in &tuples {
            prop_assert!(t.ts >= lo - 1e-9 && t.ts < lo + len);
            prop_assert!((t.values[0] - (icpt + slope * t.ts)).abs() < 1e-9);
            prop_assert_eq!(t.key, 3);
        }
        // Sample count ≈ len·rate (±1 boundary effect).
        let expected = (len * rate).floor();
        prop_assert!((tuples.len() as f64 - expected).abs() <= 1.0 + 1e-9);
    }

    /// Continuous filter: every output span is inside the input span and
    /// the predicate holds at output midpoints; outside the outputs (but
    /// inside the input) it fails.
    #[test]
    fn cfilter_soundness(
        icpt in -20.0..20.0_f64,
        slope in -4.0..4.0_f64,
        thr in -15.0..15.0_f64,
    ) {
        let pred = Pred::cmp(Expr::attr(0), CmpOp::Lt, Expr::c(thr));
        let mut f = CFilter::new(pred, Binding::new(xschema()), lineage::shared());
        let seg = Segment::single(0, Span::new(0.0, 10.0), Poly::linear(icpt, slope));
        let mut out = Vec::new();
        f.process(0, &seg, &mut out);
        let model = |t: f64| icpt + slope * t;
        for o in &out {
            prop_assert!(seg.span.contains_span(&o.span));
            if !o.span.is_point() {
                prop_assert!(model(o.span.mid()) < thr + 1e-6);
            }
        }
        // Complement check on a grid.
        for i in 0..40 {
            let t = 0.125 + i as f64 * 0.25;
            let inside = out.iter().any(|o| o.span.contains(t));
            let holds = model(t) < thr;
            if (model(t) - thr).abs() > 1e-3 {
                prop_assert_eq!(inside, holds, "t={}", t);
            }
        }
    }

    /// Min envelope equals the brute-force pointwise minimum for random
    /// sets of linear segments.
    #[test]
    fn envelope_equals_bruteforce(
        segs in prop::collection::vec(
            (0.0..20.0_f64, 1.0..10.0_f64, -10.0..10.0_f64, -2.0..2.0_f64),
            1..8,
        )
    ) {
        let mut op = CMinMax::new(true, 0, 1e6, lineage::shared());
        let mut all = Vec::new();
        let mut sorted = segs.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (key, (lo, len, icpt, slope)) in sorted.iter().enumerate() {
            let s = Segment::single(key as u64, Span::new(*lo, lo + len), Poly::linear(*icpt, *slope));
            all.push(s.clone());
            let mut out = Vec::new();
            op.process(0, &s, &mut out);
        }
        for i in 0..60 {
            let t = 0.25 + i as f64 * 0.5;
            let brute = all
                .iter()
                .filter(|s| s.span.contains(t))
                .map(|s| s.eval(0, t))
                .fold(f64::INFINITY, f64::min);
            if brute.is_finite() {
                if let Some(env) = op.envelope().eval(0, t) {
                    prop_assert!((env - brute).abs() < 1e-6, "t={} env={} brute={}", t, env, brute);
                }
            }
        }
    }

    /// Sum window functions match numeric integration over random
    /// contiguous piecewise-linear chains.
    #[test]
    fn window_functions_match_integration(chain in seg_chain(6), width in 0.5..4.0_f64) {
        let mut op = CSumAvg::new(false, 0, width, lineage::shared());
        let mut outs = Vec::new();
        for s in &chain {
            op.process(0, s, &mut outs);
        }
        let numeric = |t: f64| -> f64 {
            let mut acc = 0.0;
            for s in &chain {
                let a = s.span.lo.max(t - width);
                let b = s.span.hi.min(t);
                if b > a {
                    acc += s.models[0].integrate(a, b);
                }
            }
            acc
        };
        for wf in &outs {
            for i in 0..4 {
                let t = wf.span.lo + wf.span.len() * (i as f64 + 0.5) / 4.0;
                let got = wf.models[0].eval(t);
                let want = numeric(t);
                prop_assert!(
                    (got - want).abs() < 1e-6 * (1.0 + want.abs()),
                    "wf({})={} numeric={}",
                    t, got, want
                );
            }
        }
    }
}
