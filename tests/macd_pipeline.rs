//! End-to-end pipeline tests: the paper's two macro queries through both
//! engines, checking that Pulse's predictive path produces signals that
//! agree with the discrete reference.

use pulse::core::runtime::Predictor;
use pulse::core::{PulseRuntime, RuntimeConfig, Sampler};
use pulse::math::CmpOp;
use pulse::model::{AttrKind, Expr, Pred, Schema};
use pulse::stream::{AggFunc, KeyJoin, LogicalOp, LogicalPlan, Plan, PortRef};
use pulse::workload::{ais, nyse, AisConfig, AisGen, NyseConfig, NyseGen};

fn macd(short: f64, long: f64, slide: f64) -> LogicalPlan {
    let mut lp = LogicalPlan::new(vec![nyse::schema()]);
    let s = lp.add(
        LogicalOp::Aggregate {
            func: AggFunc::Avg,
            attr: 0,
            width: short,
            slide,
            group_by_key: true,
        },
        vec![PortRef::Source(0)],
    );
    let l = lp.add(
        LogicalOp::Aggregate {
            func: AggFunc::Avg,
            attr: 0,
            width: long,
            slide,
            group_by_key: true,
        },
        vec![PortRef::Source(0)],
    );
    let j = lp.add(
        LogicalOp::Join {
            window: slide,
            pred: Pred::cmp(Expr::attr_of(0, 0), CmpOp::Gt, Expr::attr_of(1, 0)),
            on_keys: KeyJoin::Eq,
        },
        vec![s, l],
    );
    lp.add(
        LogicalOp::Map {
            exprs: vec![Expr::attr(0) - Expr::attr(1)],
            schema: Schema::of(&[("diff", AttrKind::Modeled)]),
        },
        vec![j],
    );
    lp
}

#[test]
fn macd_signals_agree_between_engines() {
    let query = macd(5.0, 20.0, 2.0);
    let trades = NyseGen::new(NyseConfig {
        symbols: 3,
        rate: 300.0,
        drift_duration: 15.0,
        tick_noise: 0.0001,
        seed: 12,
    })
    .generate(80.0);

    // Discrete reference: per-symbol set of signal window-closes.
    let mut discrete = Plan::compile(&query);
    let mut disc = Vec::new();
    for t in &trades {
        disc.extend(discrete.push(0, t));
    }
    disc.extend(discrete.finish());
    let disc_set: std::collections::HashSet<(u64, i64)> =
        disc.iter().map(|t| (t.key, t.ts.round() as i64)).collect();

    // Pulse predictive.
    let mean_price = trades.iter().map(|t| t.values[0]).sum::<f64>() / trades.len() as f64;
    let mut rt = PulseRuntime::with_predictors(
        vec![Predictor::AdaptiveLinear(nyse::schema())],
        &query,
        RuntimeConfig { horizon: 4.0, bound: 0.01 * mean_price, ..Default::default() },
    )
    .unwrap();
    let mut segs = Vec::new();
    for t in &trades {
        segs.extend(rt.on_tuple(0, t));
    }
    let sampled = Sampler::from_slide(2.0).sample(&segs);
    assert!(!sampled.is_empty(), "pulse must produce MACD signals");
    assert!(!disc_set.is_empty(), "discrete must produce MACD signals");

    // Majority of Pulse signals should coincide with discrete signals
    // (±1 close, since window alignment differs by at most one slide).
    let mut matched = 0;
    for s in &sampled {
        let t = s.ts.round() as i64;
        if (-2..=2).any(|d| disc_set.contains(&(s.key, t + d))) {
            matched += 1;
        }
    }
    let frac = matched as f64 / sampled.len() as f64;
    assert!(frac > 0.7, "only {frac:.2} of pulse signals match discrete");
    // Spreads must be positive (predicate S.ap > L.ap held).
    assert!(sampled.iter().all(|s| s.values[0] > -1e-6));
}

#[test]
fn following_query_detects_planted_pairs_in_both_engines() {
    let cfg = AisConfig {
        vessels: 8,
        follower_pairs: 1,
        rate: 80.0,
        course_duration: 40.0,
        follow_distance: 200.0,
        noise: 0.0,
        seed: 2,
    };
    let truth = AisGen::new(cfg.clone()).follower_pairs();
    let reports = AisGen::new(cfg).generate(150.0);

    let mut lp = LogicalPlan::new(vec![ais::schema()]);
    let j = lp.add(
        LogicalOp::Join { window: 5.0, pred: Pred::True, on_keys: KeyJoin::Ne },
        vec![PortRef::Source(0), PortRef::Source(0)],
    );
    let d = lp.add(
        LogicalOp::Map {
            exprs: vec![Expr::dist2(Expr::attr(0), Expr::attr(2), Expr::attr(4), Expr::attr(6))],
            schema: Schema::of(&[("dist2", AttrKind::Modeled)]),
        },
        vec![j],
    );
    let a = lp.add(
        LogicalOp::Aggregate {
            func: AggFunc::Avg,
            attr: 0,
            width: 60.0,
            slide: 10.0,
            group_by_key: true,
        },
        vec![d],
    );
    lp.add(
        LogicalOp::Filter { pred: Pred::cmp(Expr::attr(0), CmpOp::Lt, Expr::c(1000.0 * 1000.0)) },
        vec![a],
    );

    // Discrete.
    let mut discrete = Plan::compile(&lp);
    let mut disc = Vec::new();
    for r in &reports {
        disc.extend(discrete.push(0, r));
    }
    disc.extend(discrete.finish());
    let disc_pairs: std::collections::HashSet<(u64, u64)> =
        disc.iter().map(|t| (t.key >> 32, t.key & 0xFFFF_FFFF)).collect();

    // Pulse.
    let mut rt = PulseRuntime::new(
        vec![ais::stream_model()],
        &lp,
        RuntimeConfig { horizon: 20.0, bound: 10.0, ..Default::default() },
    )
    .unwrap();
    let mut segs = Vec::new();
    for r in &reports {
        segs.extend(rt.on_tuple(0, r));
    }
    let pulse_pairs: std::collections::HashSet<(u64, u64)> =
        segs.iter().map(|s| (s.key >> 32, s.key & 0xFFFF_FFFF)).collect();

    let (l, f) = truth[0];
    for pairs in [&disc_pairs, &pulse_pairs] {
        assert!(
            pairs.contains(&(l, f)) || pairs.contains(&(f, l)),
            "planted pair ({l},{f}) missing from {pairs:?}"
        );
    }
    // No false positives on vessels that roam independently for long.
    for pairs in [&disc_pairs, &pulse_pairs] {
        for &(a, b) in pairs {
            assert!(a < 2 && b < 2, "unexpected pair ({a},{b}) — only vessels 0/1 were planted");
        }
    }
}
