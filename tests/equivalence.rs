//! Discrete ↔ continuous equivalence: on data that exactly follows its
//! models, Pulse's transformed operators must agree with the tuple engine
//! (up to the discretization semantics of §IV-A).

use pulse::core::{CMinMax, CPlan, Sampler};
use pulse::math::{CmpOp, Poly, Span};
use pulse::model::{Expr, Pred, Segment, Tuple};
use pulse::stream::{AggFunc, KeyJoin, LogicalOp, LogicalPlan, Plan, PortRef};
use pulse::workload::{moving, MovingConfig, MovingObjectGen};

fn moving_workload(seed: u64) -> (Vec<Tuple>, Vec<Segment>) {
    let cfg = MovingConfig {
        objects: 4,
        sample_dt: 0.1,
        leg_duration: 5.0,
        noise: 0.0,
        seed,
        ..Default::default()
    };
    let tuples = MovingObjectGen::new(cfg.clone()).generate(30.0);
    let segs = MovingObjectGen::ground_truth(&cfg, 30.0);
    (tuples, segs)
}

#[test]
fn filter_outputs_agree_when_sampled_on_the_input_grid() {
    let (tuples, segs) = moving_workload(1);
    let mut query = LogicalPlan::new(vec![moving::schema()]);
    query.add(
        LogicalOp::Filter { pred: Pred::cmp(Expr::attr(0), CmpOp::Lt, Expr::c(20.0)) },
        vec![PortRef::Source(0)],
    );
    let mut discrete = Plan::compile(&query);
    let mut disc_out = Vec::new();
    for t in &tuples {
        disc_out.extend(discrete.push(0, t));
    }
    let mut pulse = CPlan::compile(&query).unwrap();
    let mut cont_out = Vec::new();
    for s in &segs {
        cont_out.extend(pulse.push(0, s));
    }
    // Sample the continuous result on the same 10 Hz grid, per key.
    let sampled = Sampler::new(10.0).sample(&cont_out);
    // Compare as (key, rounded time) sets: a discrete match at tuple time t
    // must fall inside a continuous solution range and vice versa.
    let keyed = |ts: &[Tuple]| -> std::collections::HashSet<(u64, i64)> {
        ts.iter().map(|t| (t.key, (t.ts * 10.0).round() as i64)).collect()
    };
    let d = keyed(&disc_out);
    let c = keyed(&sampled);
    // Boundary samples may differ by one grid point (half-open spans), so
    // demand near-complete overlap rather than equality.
    let inter = d.intersection(&c).count();
    assert!(
        inter as f64 >= 0.98 * d.len().max(c.len()) as f64,
        "agreement {inter} of discrete {} / continuous {}",
        d.len(),
        c.len()
    );
    // And every sampled continuous value must satisfy the predicate.
    assert!(sampled.iter().all(|t| t.values[0] < 20.0 + 1e-6));
}

#[test]
fn min_aggregate_envelope_matches_discrete_window_min() {
    let (tuples, segs) = moving_workload(2);
    let (width, slide) = (5.0, 1.0);
    // Discrete windowed min across keys.
    let mut query = LogicalPlan::new(vec![moving::schema()]);
    query.add(
        LogicalOp::Aggregate { func: AggFunc::Min, attr: 0, width, slide, group_by_key: false },
        vec![PortRef::Source(0)],
    );
    let mut discrete = Plan::compile(&query);
    let mut disc_out = Vec::new();
    for t in &tuples {
        disc_out.extend(discrete.push(0, t));
    }
    disc_out.extend(discrete.finish());
    // Continuous: envelope + window extraction. Windows must be read as
    // the stream passes each closing — the operator expires state older
    // than `now − width`, so querying historical windows after the fact
    // would see partially-expired envelopes.
    let mut pulse = CPlan::compile(&query).unwrap();
    let mut next_seg = 0;
    let mut checked = 0;
    for d in &disc_out {
        while next_seg < segs.len() && segs[next_seg].span.lo < d.ts {
            pulse.push(0, &segs[next_seg]);
            next_seg += 1;
        }
        let env = pulse.op(0).as_any().downcast_ref::<CMinMax>().unwrap();
        // Discrete min is over samples; continuous min over the continuum
        // of the same window. They agree on piecewise-linear data whose
        // kinks land on sample instants (our generator's construction).
        if let Some(cv) = env.window_value(d.ts) {
            // The continuous minimum is over the full continuum, so it can
            // undercut the sampled minimum by at most one inter-sample step
            // of drift (§IV-A's discretization gap) — never exceed it.
            let max_drift = 5.0 * 0.1; // max_speed · sample_dt
            assert!(
                cv <= d.values[0] + 1e-6 && cv >= d.values[0] - max_drift - 1e-6,
                "window closing {}: continuous {cv} vs discrete {}",
                d.ts,
                d.values[0]
            );
            checked += 1;
        }
    }
    assert!(checked > 10, "too few comparable windows: {checked}");
}

#[test]
fn avg_aggregate_window_function_matches_discrete_average() {
    // Uniform 20 Hz sampling of a keyed linear value → discrete window avg
    // converges to the time average (the integral / width).
    let (width, slide) = (4.0, 1.0);
    let mut query = LogicalPlan::new(vec![moving::schema()]);
    query.add(
        LogicalOp::Aggregate { func: AggFunc::Avg, attr: 0, width, slide, group_by_key: true },
        vec![PortRef::Source(0)],
    );
    let dt = 0.05;
    let mut tuples = Vec::new();
    let poly = Poly::linear(3.0, 0.5); // x = 3 + 0.5t
    let mut i = 0;
    while (i as f64) * dt < 30.0 {
        let ts = i as f64 * dt;
        tuples.push(Tuple::new(1, ts, vec![poly.eval(ts), 0.5, 0.0, 0.0]));
        i += 1;
    }
    let seg = Segment::new(1, Span::new(0.0, 30.0), vec![poly.clone(), Poly::zero()], Vec::new());
    let mut discrete = Plan::compile(&query);
    let mut disc_out = Vec::new();
    for t in &tuples {
        disc_out.extend(discrete.push(0, t));
    }
    disc_out.extend(discrete.finish());
    let mut pulse = CPlan::compile(&query).unwrap();
    let cont_out = pulse.push(0, &seg);
    assert!(!cont_out.is_empty());
    for d in &disc_out {
        let close = d.ts;
        if let Some(wf) = cont_out.iter().find(|s| s.span.contains(close)) {
            let cv = wf.models[0].eval(close);
            // Discrete avg over uniform samples of a line vs the integral:
            // both equal the line's midpoint value up to discretization.
            assert!(
                (cv - d.values[0]).abs() < 0.5 * dt + 1e-6,
                "close {close}: continuous {cv} vs discrete {}",
                d.values[0]
            );
        }
    }
}

#[test]
fn join_discrete_matches_fall_inside_continuous_ranges() {
    // Two keyed linear streams; join where left < right.
    let pred = Pred::cmp(Expr::attr_of(0, 0), CmpOp::Lt, Expr::attr_of(1, 0));
    // A small window keeps the discrete join near-simultaneous, making it
    // comparable to Pulse's equi-join-on-time semantics (§III-A).
    let mut query = LogicalPlan::new(vec![moving::schema(), moving::schema()]);
    query.add(
        LogicalOp::Join { window: 0.15, pred, on_keys: KeyJoin::Any },
        vec![PortRef::Source(0), PortRef::Source(1)],
    );
    // Left: x = t − 10 ; Right: x = 5 (crossing at t = 15).
    let mk_tuples = |poly: &Poly, key: u64| -> Vec<Tuple> {
        (0..300)
            .map(|i| {
                let ts = i as f64 * 0.1;
                Tuple::new(key, ts, vec![poly.eval(ts), 0.0, 0.0, 0.0])
            })
            .collect()
    };
    let lp_poly = Poly::linear(-10.0, 1.0);
    let rp_poly = Poly::constant(5.0);
    let lt = mk_tuples(&lp_poly, 1);
    let rt = mk_tuples(&rp_poly, 2);
    let mut discrete = Plan::compile(&query);
    let mut disc_out = Vec::new();
    for i in 0..300 {
        disc_out.extend(discrete.push(0, &lt[i]));
        disc_out.extend(discrete.push(1, &rt[i]));
    }
    let l_seg = Segment::new(1, Span::new(0.0, 30.0), vec![lp_poly, Poly::zero()], Vec::new());
    let r_seg = Segment::new(2, Span::new(0.0, 30.0), vec![rp_poly, Poly::zero()], Vec::new());
    let mut pulse = CPlan::compile(&query).unwrap();
    let mut cont_out = pulse.push(0, &l_seg);
    cont_out.extend(pulse.push(1, &r_seg));
    assert_eq!(cont_out.len(), 1);
    let range = cont_out[0].span;
    // Every discrete match instant lies in the continuous solution range.
    assert!(!disc_out.is_empty());
    for d in &disc_out {
        assert!(
            range.contains(d.ts) || (d.ts - range.hi).abs() < 0.2,
            "discrete match at {} outside continuous range {range:?}",
            d.ts
        );
    }
    // And the range boundary is the analytic crossing t = 15.
    assert!((range.hi - 15.0).abs() < 1e-6);
}
