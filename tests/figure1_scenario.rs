//! End-to-end reproduction of the paper's Figure 1: a join between a
//! linearly modeled stream and a quadratically modeled stream, written in
//! the query language with MODEL clauses, executed predictively, and
//! checked against the hand-derived difference equation.
//!
//! ```sql
//! SELECT * from A MODEL A.x = A.x + A.v*t
//! JOIN   B MODEL B.y = B.v*t + B.a*t^2
//! ON (A.x < B.y)
//! ```
//!
//! Transformation: `A.x + A.v·t − (B.v·t + B.a·t²) < 0` — "factor time
//! variable t".

use pulse::core::{PulseRuntime, RuntimeConfig};
use pulse::model::{AttrKind, Schema, Tuple};
use pulse::sql::{parse_query, Catalog};

fn catalog() -> Catalog {
    Catalog::new()
        .stream(
            "a",
            Schema::of(&[("x", AttrKind::Modeled), ("v", AttrKind::Coefficient)]),
            Some("aid"),
        )
        .stream(
            "b",
            Schema::of(&[
                ("y", AttrKind::Modeled),
                ("v", AttrKind::Coefficient),
                ("a", AttrKind::Coefficient),
            ]),
            Some("bid"),
        )
}

#[test]
fn figure1_join_solves_quadratic_difference_equation() {
    let q = "select * \
             from a model x = x + v * t \
             join b model y = v * t + a * pow(t, 2) \
             on (a.x < b.y) within 100";
    let compiled = parse_query(q, &catalog()).expect("Figure 1 query compiles");
    assert_eq!(compiled.plan.sources.len(), 2);
    let model_a = compiled.models[0].clone().expect("A's MODEL clause");
    let model_b = compiled.models[1].clone().expect("B's MODEL clause");

    let mut rt = PulseRuntime::new(
        vec![model_a, model_b],
        &compiled.plan,
        RuntimeConfig { horizon: 20.0, bound: 1e9, ..Default::default() },
    )
    .expect("transforms to equation systems");

    // Figure 1's concrete instance: A.x(t) = 1 + 3t ; B.y(t) = t + t².
    // Difference: 1 + 2t − t² < 0  ⇔  t > 1 + √2 (within the horizon).
    let mut outs = rt.on_tuple(0, &Tuple::new(1, 0.0, vec![1.0, 3.0]));
    outs.extend(rt.on_tuple(1, &Tuple::new(2, 0.0, vec![0.0, 1.0, 1.0])));
    assert_eq!(outs.len(), 1, "one solution range: {outs:?}");
    let span = outs[0].span;
    let expected = 1.0 + 2f64.sqrt();
    assert!(
        (span.lo - expected).abs() < 1e-6,
        "range starts at 1+√2 ≈ {expected}: got {}",
        span.lo
    );
    assert!((span.hi - 20.0).abs() < 1e-6, "range extends to the horizon");

    // The joined segment carries both models: verify the predicate holds on
    // sampled points of the solution and fails before it.
    let ax = &outs[0].models[0];
    let by = &outs[0].models[1];
    for i in 1..10 {
        let t = span.lo + (span.hi - span.lo) * i as f64 / 10.0;
        assert!(ax.eval(t) < by.eval(t) + 1e-9, "predicate holds at t={t}");
    }
    assert!(ax.eval(expected - 0.5) > by.eval(expected - 0.5), "fails before the root");
}

#[test]
fn figure1_false_negative_semantics_observation2() {
    // §IV-A Observation 2: with a precision bound, tuples near the model
    // are absorbed, so outputs that a discrete processor would produce from
    // a (slightly deviating) tuple can be legitimately omitted.
    let q = "select * from a model x = x + v * t where x > 10 within 1";
    // `within` applies to joins only; keep the filter form instead.
    let q = q.replace(" within 1", "");
    let compiled = parse_query(&q, &catalog()).expect("compiles");
    let model_a = compiled.models[0].clone().unwrap();
    let mut rt = PulseRuntime::new(
        vec![model_a],
        &compiled.plan,
        RuntimeConfig { horizon: 100.0, bound: 0.5, ..Default::default() },
    )
    .unwrap();
    // Model: x = 9 (constant, v=0) → filter x>10 never fires.
    let outs = rt.on_tuple(0, &Tuple::new(1, 0.0, vec![9.0, 0.0]));
    assert!(outs.is_empty());
    // A real tuple at 9.4 (within the 0.5 bound): absorbed, still no output
    // — the paper's subset semantics.
    let outs = rt.on_tuple(0, &Tuple::new(1, 1.0, vec![9.4, 0.0]));
    assert!(outs.is_empty());
    assert_eq!(rt.stats().suppressed, 1);
    // A tuple at 10.2 (beyond the bound): violation → re-model → output.
    let outs = rt.on_tuple(0, &Tuple::new(1, 2.0, vec![10.2, 0.0]));
    assert!(!outs.is_empty(), "deviation beyond the bound re-solves and fires");
}
