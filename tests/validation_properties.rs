//! Property-based tests of the validation machinery (§IV): bound splits
//! stay conservative, query inversion never over-allocates, equation-system
//! solutions actually satisfy their predicates, and suppressed tuples were
//! genuinely within bounds.

use proptest::prelude::*;
use pulse::core::validate::{Bound, BoundInverter, EquiSplit, GradientSplit, SplitHeuristic};
use pulse::core::{LineageStore, PulseRuntime, RuntimeConfig, System};
use pulse::math::{solve_poly_cmp, CmpOp, Poly, Span};
use pulse::model::{Expr, Pred, Segment, Tuple};
use pulse::stream::{LogicalOp, LogicalPlan, PortRef};
use pulse::workload::moving;

fn arb_poly(max_deg: usize) -> impl Strategy<Value = Poly> {
    prop::collection::vec(-10.0..10.0_f64, 1..=max_deg + 1).prop_map(Poly::new)
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Ge),
        Just(CmpOp::Gt),
    ]
}

proptest! {
    /// Sampled points inside a solution set satisfy the comparison; points
    /// far from boundaries outside it do not.
    #[test]
    fn solve_poly_cmp_is_sound(poly in arb_poly(4), op in arb_cmp()) {
        let domain = Span::new(-5.0, 5.0);
        let sol = solve_poly_cmp(&poly, op, domain, 1e-10);
        for span in sol.spans() {
            let t = span.mid();
            let v = poly.eval(t);
            // Interior points must satisfy within numeric tolerance.
            let ok = match op {
                CmpOp::Lt | CmpOp::Le => v <= 1e-6,
                CmpOp::Gt | CmpOp::Ge => v >= -1e-6,
                CmpOp::Eq => v.abs() <= 1e-4 * (1.0 + poly.max_coeff()),
                CmpOp::Ne => true,
            };
            prop_assert!(ok, "op {op} violated at t={t}: p(t)={v} ({poly})");
        }
    }

    /// Solution sets of p R 0 and p ¬R 0 partition the domain.
    #[test]
    fn solution_and_negation_partition_domain(poly in arb_poly(3), op in arb_cmp()) {
        let domain = Span::new(-4.0, 4.0);
        let a = solve_poly_cmp(&poly, op, domain, 1e-10);
        let b = solve_poly_cmp(&poly, op.negate(), domain, 1e-10);
        let together = a.union(&b);
        // Union must cover the domain's measure (boundary slivers aside).
        prop_assert!(together.measure() >= domain.len() - 1e-6,
            "cover {} of {}", together.measure(), domain.len());
        // And overlap must be at most boundary points.
        prop_assert!(a.intersect(&b).measure() <= 1e-6);
    }

    /// Split heuristics are conservative: every allocated share is within
    /// the output bound, and shares sum to at most the bound.
    #[test]
    fn splits_are_conservative(
        eps in 0.001..100.0_f64,
        slopes in prop::collection::vec(-20.0..20.0_f64, 1..6),
        deps in 1..4usize,
    ) {
        let out = Segment::single(0, Span::new(0.0, 10.0), Poly::linear(0.0, 1.0));
        let inputs: Vec<Segment> = slopes
            .iter()
            .map(|&s| Segment::single(1, Span::new(0.0, 10.0), Poly::linear(0.0, s)))
            .collect();
        let refs: Vec<&Segment> = inputs.iter().collect();
        let bound = Bound::symmetric(eps);
        for heuristic in [&EquiSplit as &dyn SplitHeuristic, &GradientSplit] {
            let parts = heuristic.split(&out, bound, &refs, deps);
            prop_assert_eq!(parts.len(), refs.len());
            let total: f64 = parts.iter().map(|(_, b)| b.below).sum();
            prop_assert!(total <= eps + 1e-9, "total {total} exceeds {eps}");
            for (_, b) in &parts {
                prop_assert!(b.below <= eps + 1e-9 && b.above <= eps + 1e-9);
                prop_assert!(b.below >= 0.0 && b.above >= 0.0);
            }
        }
    }

    /// Inverting through a random lineage chain never allocates more than
    /// the output bound to any source.
    #[test]
    fn inversion_never_exceeds_output_bound(
        eps in 0.01..10.0_f64,
        fanouts in prop::collection::vec(1..4usize, 1..4),
    ) {
        let mut store = LineageStore::default();
        let mk = || Segment::single(0, Span::new(0.0, 1.0), Poly::linear(1.0, 1.0));
        let out = mk();
        store.register(&out);
        let mut frontier = vec![out.id];
        for fan in &fanouts {
            let mut next = Vec::new();
            for id in frontier {
                let parents: Vec<Segment> = (0..*fan).map(|_| mk()).collect();
                for p in &parents {
                    store.register(p);
                    next.push(p.id);
                }
                store.record(id, &parents.iter().map(|p| p.id).collect::<Vec<_>>());
            }
            frontier = next;
        }
        let heuristic = EquiSplit;
        let inv = BoundInverter::new(&store, &heuristic, 1);
        let bounds = inv.invert(out.id, Bound::symmetric(eps));
        prop_assert!(!bounds.is_empty());
        for b in bounds.values() {
            prop_assert!(b.below <= eps + 1e-9);
        }
    }

    /// Predicate trees solved as equation systems agree with direct
    /// pointwise evaluation of the predicate on the model values.
    #[test]
    fn system_matches_pointwise_predicate(
        c0 in -5.0..5.0_f64,
        c1 in -2.0..2.0_f64,
        thr in -5.0..5.0_f64,
    ) {
        let pred = Pred::cmp(Expr::attr(0), CmpOp::Lt, Expr::c(thr))
            .or(Pred::cmp(Expr::attr(0), CmpOp::Gt, Expr::c(thr + 1.0)));
        let model = Poly::linear(c0, c1);
        let lookup = |_: usize, _: usize| Ok(model.clone());
        let sys = System::build(&pred.normalize(), &lookup).unwrap();
        let mut rows = 0;
        let domain = Span::new(0.0, 10.0);
        let sol = sys.solve(domain, &mut rows);
        for i in 0..50 {
            let t = 0.1 + i as f64 * 0.198;
            let v = model.eval(t);
            let direct = v < thr || v > thr + 1.0;
            // Skip points within tolerance of a boundary.
            if (v - thr).abs() < 1e-3 || (v - thr - 1.0).abs() < 1e-3 {
                continue;
            }
            prop_assert_eq!(sol.contains(t), direct, "t={}, v={}", t, v);
        }
    }
}

/// Suppressed tuples really were within the configured bound of the model:
/// the runtime's core accuracy guarantee.
#[test]
fn suppressed_tuples_lie_within_bound() {
    let bound = 0.8;
    let mut lp = LogicalPlan::new(vec![moving::schema()]);
    lp.add(
        LogicalOp::Filter { pred: Pred::cmp(Expr::attr(0), CmpOp::Gt, Expr::c(-1e9)) },
        vec![PortRef::Source(0)],
    );
    let mut rt = PulseRuntime::new(
        vec![moving::stream_model()],
        &lp,
        RuntimeConfig { horizon: 100.0, bound, ..Default::default() },
    )
    .unwrap();
    // Deterministic noisy trajectory.
    let mut violations_seen = 0;
    let mut last_model: Option<(f64, f64)> = None; // (x0, v) of current model
    for i in 0..500 {
        let ts = i as f64 * 0.1;
        let noise = (((i * 2654435761_usize) % 997) as f64 / 997.0 - 0.5) * 2.4;
        let x = 2.0 * ts + noise;
        let before = rt.stats().violations;
        rt.on_tuple(0, &Tuple::new(1, ts, vec![x, 2.0, 0.0, 0.0]));
        let after = rt.stats();
        if after.violations > before {
            violations_seen += 1;
            last_model = Some((x - 2.0 * ts, 2.0));
        } else if after.suppressed > 0 {
            if let Some((x0, v)) = last_model {
                // The suppressed tuple's deviation from the *current* model
                // must be within the bound (inverted allocations only ever
                // tighten it).
                let predicted = x0 + v * ts;
                assert!(
                    (x - predicted).abs() <= bound + 1e-9,
                    "suppressed tuple outside bound at ts={ts}: |{x} - {predicted}|"
                );
            }
        }
    }
    assert!(violations_seen > 0, "workload should trigger some violations");
}
