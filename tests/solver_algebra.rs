//! Property tests for the algebra the equation-system solver is built on:
//! the boolean laws of [`RangeSet`] (predicate conjunction/disjunction/
//! negation map to intersection/union/complement) and the soundness of the
//! continuous join against pointwise predicate evaluation.

use proptest::prelude::*;
use pulse::core::{lineage, Binding, CJoin, COperator};
use pulse::math::{CmpOp, Poly, RangeSet, Span};
use pulse::model::{AttrKind, Expr, Pred, Schema, Segment};
use pulse::stream::KeyJoin;

fn arb_rangeset() -> impl Strategy<Value = RangeSet> {
    prop::collection::vec((0.0..20.0_f64, 0.1..5.0_f64), 0..6).prop_map(|spans| {
        RangeSet::from_spans(spans.into_iter().map(|(lo, len)| Span::new(lo, lo + len)).collect())
    })
}

const DOMAIN: Span = Span { lo: -1.0, hi: 26.0 };

/// Approximate set equality: both differences have (near-)zero measure.
fn assert_set_eq(a: &RangeSet, b: &RangeSet) -> Result<(), TestCaseError> {
    let d1 = a.subtract(b).measure();
    let d2 = b.subtract(a).measure();
    prop_assert!(d1 < 1e-6 && d2 < 1e-6, "sets differ: {a:?} vs {b:?}");
    Ok(())
}

proptest! {
    /// Union and intersection are commutative and associative.
    #[test]
    fn union_intersect_laws(a in arb_rangeset(), b in arb_rangeset(), c in arb_rangeset()) {
        assert_set_eq(&a.union(&b), &b.union(&a))?;
        assert_set_eq(&a.intersect(&b), &b.intersect(&a))?;
        assert_set_eq(&a.union(&b).union(&c), &a.union(&b.union(&c)))?;
        assert_set_eq(&a.intersect(&b).intersect(&c), &a.intersect(&b.intersect(&c)))?;
    }

    /// De Morgan: ¬(A ∪ B) = ¬A ∩ ¬B within the domain — the law the
    /// solver relies on when predicates contain Not over Or.
    #[test]
    fn de_morgan(a in arb_rangeset(), b in arb_rangeset()) {
        let lhs = a.union(&b).complement(DOMAIN);
        let rhs = a.complement(DOMAIN).intersect(&b.complement(DOMAIN));
        assert_set_eq(&lhs, &rhs)?;
    }

    /// Double complement within the domain restores the clipped set.
    #[test]
    fn double_complement(a in arb_rangeset()) {
        let clipped = a.clip(DOMAIN);
        let back = a.complement(DOMAIN).complement(DOMAIN);
        assert_set_eq(&clipped, &back)?;
    }

    /// Distributivity: A ∩ (B ∪ C) = (A ∩ B) ∪ (A ∩ C).
    #[test]
    fn distributivity(a in arb_rangeset(), b in arb_rangeset(), c in arb_rangeset()) {
        let lhs = a.intersect(&b.union(&c));
        let rhs = a.intersect(&b).union(&a.intersect(&c));
        assert_set_eq(&lhs, &rhs)?;
    }

    /// Continuous join soundness on random linear models: inside every
    /// output span the predicate holds pointwise; outside all output spans
    /// (within the overlap) it fails.
    #[test]
    fn cjoin_matches_pointwise_predicate(
        li in -10.0..10.0_f64, ls in -2.0..2.0_f64,
        ri in -10.0..10.0_f64, rs in -2.0..2.0_f64,
    ) {
        let schema = Schema::of(&[("x", AttrKind::Modeled)]);
        let pred = Pred::cmp(Expr::attr_of(0, 0), CmpOp::Lt, Expr::attr_of(1, 0));
        let mut join = CJoin::new(
            100.0,
            pred,
            KeyJoin::Any,
            [Binding::new(schema.clone()), Binding::new(schema)],
            lineage::shared(),
        );
        let l = Segment::single(1, Span::new(0.0, 10.0), Poly::linear(li, ls));
        let r = Segment::single(2, Span::new(0.0, 10.0), Poly::linear(ri, rs));
        let mut out = Vec::new();
        join.process(0, &l, &mut out);
        join.process(1, &r, &mut out);
        let lv = |t: f64| li + ls * t;
        let rv = |t: f64| ri + rs * t;
        for o in &out {
            if !o.span.is_point() {
                let t = o.span.mid();
                prop_assert!(lv(t) < rv(t) + 1e-6, "inside output at t={t}");
            }
        }
        // Grid check of the complement.
        for i in 0..40 {
            let t = 0.125 + i as f64 * 0.25;
            let inside = out.iter().any(|o| o.span.contains(t));
            let holds = lv(t) < rv(t);
            // Skip near the crossing where tolerance decides.
            if (lv(t) - rv(t)).abs() > 1e-3 {
                prop_assert_eq!(inside, holds, "t={}", t);
            }
        }
    }
}
