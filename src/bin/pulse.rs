//! `pulse` — command-line front end for the Pulse stream processor.
//!
//! Runs a query (from a file or inline) against one of the built-in
//! workloads on either engine:
//!
//! ```text
//! pulse run --query 'select * from objects where x > 50 sample rate 5' \
//!           --workload moving --mode predictive --duration 60
//! pulse run --query macd.sql --workload nyse --mode discrete
//! pulse catalog                  # show the built-in streams
//! ```
//!
//! Modes: `discrete` (tuple engine), `predictive` (Pulse online, MODEL
//! clause or adaptive linear models + validation), `historical` (fit once,
//! query segments).

use pulse::core::runtime::Predictor;
use pulse::core::{HistoricalStore, PulseRuntime, RuntimeConfig, Sampler};
use pulse::model::{AttrKind, CheckMode, FitConfig, Schema, Tuple};
use pulse::sql::{parse_query, Catalog, Compiled};
use pulse::stream::Plan;
use pulse::workload::{
    ais, moving, AisConfig, AisGen, MovingConfig, MovingObjectGen, NyseConfig, NyseGen,
};
use std::collections::HashMap;
use std::process::ExitCode;

fn catalog() -> Catalog {
    Catalog::new()
        .stream(
            "trades",
            Schema::of(&[("price", AttrKind::Modeled), ("qty", AttrKind::Unmodeled)]),
            Some("symbol"),
        )
        .stream("vessels", ais::schema(), Some("id"))
        .stream("objects", moving::schema(), Some("id"))
}

struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(args: &[String]) -> Result<Args, String> {
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(name) = a.strip_prefix("--") {
                let val = args.get(i + 1).ok_or_else(|| format!("--{name} needs a value"))?;
                flags.insert(name.to_string(), val.clone());
                i += 2;
            } else {
                return Err(format!("unexpected argument `{a}`"));
            }
        }
        Ok(Args { flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    fn get_f64(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: not a number: {v}")),
        }
    }
}

fn usage() -> &'static str {
    "pulse — continuous-time query processing via simultaneous equation systems\n\
     \n\
     USAGE:\n\
       pulse run --query <sql-or-file> --workload <moving|nyse|ais>\n\
                 [--mode discrete|predictive|historical]  (default: predictive)\n\
                 [--duration <secs>]                      (default: 60)\n\
                 [--horizon <secs>]                       (default: 10)\n\
                 [--limit <n>]                            (default: 10 result rows shown)\n\
                 [--explain yes]                           (print the plan, don't run)\n\
       pulse catalog\n\
     \n\
     The query language supports SELECT blocks with [size w advance s]\n\
     windows, joins with ON (...) WITHIN w, MODEL clauses, GROUP BY,\n\
     HAVING, ERROR WITHIN x%, and SAMPLE RATE r. See README.md."
}

fn load_workload(name: &str, duration: f64) -> Result<Vec<Tuple>, String> {
    Ok(match name {
        "moving" => MovingObjectGen::new(MovingConfig {
            objects: 10,
            sample_dt: 0.05,
            leg_duration: 10.0,
            noise: 0.1,
            ..Default::default()
        })
        .generate(duration),
        "nyse" => NyseGen::new(NyseConfig { rate: 2000.0, symbols: 10, ..Default::default() })
            .generate(duration),
        "ais" => AisGen::new(AisConfig {
            vessels: 12,
            follower_pairs: 2,
            rate: 120.0,
            noise: 2.0,
            ..Default::default()
        })
        .generate(duration),
        other => return Err(format!("unknown workload `{other}` (moving|nyse|ais)")),
    })
}

fn print_tuples(tuples: &[Tuple], limit: usize) {
    for t in tuples.iter().take(limit) {
        let vals: Vec<String> = t.values.iter().map(|v| format!("{v:.4}")).collect();
        println!("  t={:9.3}  key={:<6} [{}]", t.ts, t.key, vals.join(", "));
    }
    if tuples.len() > limit {
        println!("  … {} more", tuples.len() - limit);
    }
}

fn run(args: &Args) -> Result<(), String> {
    let query_arg = args.get("query").ok_or("--query is required")?;
    let query_text = if std::path::Path::new(query_arg).exists() {
        std::fs::read_to_string(query_arg).map_err(|e| format!("reading {query_arg}: {e}"))?
    } else {
        query_arg.to_string()
    };
    let workload = args.get("workload").ok_or("--workload is required")?;
    let mode = args.get("mode").unwrap_or("predictive");
    let duration = args.get_f64("duration", 60.0)?;
    let horizon = args.get_f64("horizon", 10.0)?;
    let limit = args.get_f64("limit", 10.0)? as usize;

    let compiled: Compiled = parse_query(&query_text, &catalog()).map_err(|e| e.to_string())?;
    if args.get("explain").is_some() {
        print!("{}", pulse::stream::explain(&compiled.plan));
        return Ok(());
    }
    let tuples = load_workload(workload, duration)?;
    println!(
        "query compiled: {} operators | workload `{workload}`: {} tuples over {duration}s",
        compiled.plan.nodes.len(),
        tuples.len()
    );
    let mean_val =
        tuples.iter().map(|t| t.values[0].abs()).sum::<f64>() / tuples.len().max(1) as f64;
    let bound = compiled.error_within.unwrap_or(0.01) * mean_val;
    let sample_rate = compiled.sample_rate.unwrap_or(1.0);

    let start = std::time::Instant::now();
    match mode {
        "discrete" => {
            let mut plan = Plan::compile(&compiled.plan);
            let mut out = Vec::new();
            for t in &tuples {
                out.extend(plan.push(0, t));
            }
            out.extend(plan.finish());
            let secs = start.elapsed().as_secs_f64();
            println!(
                "discrete: {} outputs in {:.1} ms ({:.0} tuples/s, {} work units)",
                out.len(),
                secs * 1e3,
                tuples.len() as f64 / secs,
                plan.metrics().work()
            );
            print_tuples(&out, limit);
        }
        "predictive" => {
            let predictor = match compiled.models[0].clone() {
                Some(sm) => Predictor::Clause(sm),
                None => {
                    println!("(no MODEL clause — using adaptive linear models)");
                    Predictor::AdaptiveLinear(compiled.plan.sources[0].clone())
                }
            };
            let cfg = RuntimeConfig { horizon, bound, ..Default::default() };
            let mut rt = PulseRuntime::with_predictors(vec![predictor], &compiled.plan, cfg)
                .map_err(|e| e.to_string())?;
            let mut segs = Vec::new();
            for t in &tuples {
                segs.extend(rt.on_tuple(0, t));
            }
            let secs = start.elapsed().as_secs_f64();
            let s = rt.stats();
            println!(
                "pulse predictive: {} result segments in {:.1} ms ({:.0} tuples/s)",
                segs.len(),
                secs * 1e3,
                tuples.len() as f64 / secs
            );
            println!(
                "  validation: {}/{} suppressed, {} violations, {} models solved, bound ±{bound:.4}",
                s.suppressed, s.tuples_in, s.violations, s.segments_pushed
            );
            let sampled = Sampler::new(sample_rate).sample(&segs);
            println!("  sampled at {sample_rate}/s: {} tuples", sampled.len());
            print_tuples(&sampled, limit);
        }
        "historical" => {
            let fit =
                FitConfig { max_error: bound, check: CheckMode::NewPoint, ..Default::default() };
            let modeled = compiled.plan.sources[0].modeled_indices();
            let store = HistoricalStore::build(&tuples, fit, modeled);
            println!(
                "modeled: {} segments ({:.0} tuples/segment)",
                store.segments().len(),
                store.compression()
            );
            let out = store.run(&compiled.plan).map_err(|e| e.to_string())?;
            let secs = start.elapsed().as_secs_f64();
            println!(
                "historical: {} result segments in {:.1} ms ({:.0} tuples/s incl. fitting)",
                out.len(),
                secs * 1e3,
                tuples.len() as f64 / secs
            );
            let sampled = Sampler::new(sample_rate).sample(&out);
            println!("  sampled at {sample_rate}/s: {} tuples", sampled.len());
            print_tuples(&sampled, limit);
        }
        other => return Err(format!("unknown mode `{other}` (discrete|predictive|historical)")),
    }
    Ok(())
}

fn show_catalog() {
    println!("built-in streams:");
    println!("  trades  (key: symbol)  price (modeled), qty (unmodeled)   — workload `nyse`");
    println!("  vessels (key: id)      x, y (modeled), vx, vy (coeff)     — workload `ais`");
    println!("  objects (key: id)      x, y (modeled), vx, vy (coeff)     — workload `moving`");
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("run") => match Args::parse(&argv[1..]).and_then(|a| run(&a)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}\n\n{}", usage());
                ExitCode::FAILURE
            }
        },
        Some("catalog") => {
            show_catalog();
            ExitCode::SUCCESS
        }
        _ => {
            println!("{}", usage());
            ExitCode::FAILURE
        }
    }
}
