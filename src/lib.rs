//! Facade crate re-exporting the Pulse workspace.
pub use pulse_core as core;
pub use pulse_math as math;
pub use pulse_model as model;
pub use pulse_obs as obs;
pub use pulse_sql as sql;
pub use pulse_stream as stream;
pub use pulse_workload as workload;
