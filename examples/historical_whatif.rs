//! Historical processing (§II-A): model a stored stream once, then run many
//! "what-if" parameter-sweep queries against the compact segment form.
//!
//! The cost of modeling is paid once and amortized across every query —
//! here a sweep of MACD short-window settings, the paper's canonical
//! financial-services scenario.
//!
//! Run with: `cargo run --release --example historical_whatif`

use pulse::core::{CPlan, Sampler};
use pulse::math::CmpOp;
use pulse::model::{AttrKind, CheckMode, Expr, FitConfig, Pred, Schema, StreamFitter};
use pulse::stream::{AggFunc, KeyJoin, LogicalOp, LogicalPlan, PortRef};
use pulse::workload::{nyse, NyseConfig, NyseGen};
use std::time::Instant;

fn macd_variant(short: f64) -> LogicalPlan {
    let (long, slide) = (60.0, 2.0);
    let mut lp = LogicalPlan::new(vec![nyse::schema()]);
    let s = lp.add(
        LogicalOp::Aggregate { func: AggFunc::Avg, attr: 0, width: short, slide, group_by_key: true },
        vec![PortRef::Source(0)],
    );
    let l = lp.add(
        LogicalOp::Aggregate { func: AggFunc::Avg, attr: 0, width: long, slide, group_by_key: true },
        vec![PortRef::Source(0)],
    );
    let j = lp.add(
        LogicalOp::Join {
            window: slide,
            pred: Pred::cmp(Expr::attr_of(0, 0), CmpOp::Gt, Expr::attr_of(1, 0)),
            on_keys: KeyJoin::Eq,
        },
        vec![s, l],
    );
    lp.add(
        LogicalOp::Map {
            exprs: vec![Expr::attr(0) - Expr::attr(1)],
            schema: Schema::of(&[("diff", AttrKind::Modeled)]),
        },
        vec![j],
    );
    lp
}

fn main() {
    // The "historical archive": 3 minutes of trades at 2000 t/s.
    let trades = NyseGen::new(NyseConfig {
        symbols: 10,
        rate: 2000.0,
        drift_duration: 10.0,
        tick_noise: 0.0002,
        seed: 5,
    })
    .generate(180.0);
    println!("archive: {} trades", trades.len());

    // Step 1: model the archive ONCE (online segmentation, §V's Keogh
    // algorithm with the O(1) new-point check).
    let t0 = Instant::now();
    let mean_price = trades.iter().map(|t| t.values[0]).sum::<f64>() / trades.len() as f64;
    let mut fitter = StreamFitter::new(
        FitConfig { max_error: 0.005 * mean_price, check: CheckMode::NewPoint, ..Default::default() },
        vec![0],
    );
    let mut segments = Vec::new();
    for t in &trades {
        segments.extend(fitter.push(t));
    }
    segments.extend(fitter.finish());
    segments.sort_by(|a, b| a.span.lo.partial_cmp(&b.span.lo).unwrap());
    let fit_time = t0.elapsed();
    println!(
        "modeled once in {:.1} ms → {} segments ({:.0} tuples/segment compression)",
        fit_time.as_secs_f64() * 1e3,
        segments.len(),
        trades.len() as f64 / segments.len() as f64
    );

    // Step 2: sweep the short-window parameter across the SAME segments.
    println!("\nwhat-if sweep over MACD short windows:");
    let sampler = Sampler::from_slide(2.0);
    let t1 = Instant::now();
    for short in [5.0, 10.0, 20.0, 30.0, 45.0] {
        let query = macd_variant(short);
        let mut plan = CPlan::compile(&query).expect("MACD transforms");
        let mut outs = Vec::new();
        for s in &segments {
            outs.extend(plan.push(0, s));
        }
        let signals = sampler.sample(&outs);
        // Strategy quality proxy: mean positive spread across signals.
        let mean_spread = if signals.is_empty() {
            0.0
        } else {
            signals.iter().map(|s| s.values[0]).sum::<f64>() / signals.len() as f64
        };
        println!(
            "  short={short:>4}s → {:>5} signals, mean spread {:+.4}",
            signals.len(),
            mean_spread
        );
    }
    let sweep_time = t1.elapsed();
    println!(
        "\n5 what-if queries over segments: {:.1} ms total (modeling amortized: {:.1} ms once)",
        sweep_time.as_secs_f64() * 1e3,
        fit_time.as_secs_f64() * 1e3
    );
}
