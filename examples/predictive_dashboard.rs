//! Online predictive processing (§II-A, §IV): Pulse precomputes query
//! results from MODEL-clause trajectories and only re-runs the solver when
//! validation detects the world diverging from the models.
//!
//! This example sweeps the accuracy bound on a noisy moving-object stream
//! and reports the paper's central tradeoff: tighter bounds mean more
//! violations, more solving, less suppression.
//!
//! Run with: `cargo run --release --example predictive_dashboard`

use pulse::core::{PulseRuntime, RuntimeConfig};
use pulse::math::CmpOp;
use pulse::model::{Expr, Pred};
use pulse::stream::{LogicalOp, LogicalPlan, PortRef};
use pulse::workload::{moving, MovingConfig, MovingObjectGen};

fn main() {
    // Noisy observations of 5 objects: the MODEL clause x+v·t is right on
    // average, but every sample wobbles by up to ±0.4.
    let cfg = MovingConfig {
        objects: 5,
        sample_dt: 0.05,
        leg_duration: 8.0,
        noise: 0.4,
        seed: 17,
        ..Default::default()
    };
    let tuples = MovingObjectGen::new(cfg).generate(120.0);
    println!("{} noisy position reports (±0.4 m observation noise)\n", tuples.len());

    // Geofence alert: objects entering x > 50.
    let mut query = LogicalPlan::new(vec![moving::schema()]);
    query.add(
        LogicalOp::Filter { pred: Pred::cmp(Expr::attr(0), CmpOp::Gt, Expr::c(50.0)) },
        vec![PortRef::Source(0)],
    );

    println!(
        "{:>8}  {:>10}  {:>10}  {:>12}  {:>10}",
        "bound", "suppressed", "violations", "models solved", "alerts"
    );
    for bound in [5.0, 2.0, 1.0, 0.5, 0.25] {
        let mut rt = PulseRuntime::new(
            vec![moving::stream_model()],
            &query,
            RuntimeConfig { horizon: 8.0, bound, ..Default::default() },
        )
        .expect("filter transforms");
        let mut alerts = 0;
        for t in &tuples {
            alerts += rt.on_tuple(0, t).len();
        }
        let s = rt.stats();
        println!(
            "{:>7}m  {:>10}  {:>10}  {:>12}  {:>10}",
            bound, s.suppressed, s.violations, s.segments_pushed, alerts
        );
    }
    println!(
        "\nLoose bounds absorb the noise (validation-only fast path); tight bounds\n\
         force re-modeling — the exact efficiency/accuracy dial of Fig. 9iii."
    );
}
