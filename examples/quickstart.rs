//! Quickstart: the same query on both engines.
//!
//! Builds a tiny moving-object stream, runs a position filter through the
//! discrete tuple engine and through Pulse's equation systems, and shows
//! that Pulse answers with *time ranges* (segments) where the discrete
//! engine answers with sampled tuples.
//!
//! Run with: `cargo run --release --example quickstart`

use pulse::core::{CPlan, Sampler};
use pulse::math::CmpOp;
use pulse::model::{Expr, Pred};
use pulse::stream::{LogicalOp, LogicalPlan, Plan, PortRef};
use pulse::workload::{moving, MovingConfig, MovingObjectGen};

fn main() {
    // A stream of 3 moving objects sampled at 10 Hz.
    let cfg = MovingConfig { objects: 3, sample_dt: 0.1, leg_duration: 20.0, seed: 4, ..Default::default() };
    let tuples = MovingObjectGen::new(cfg.clone()).generate(20.0);
    println!("workload: {} tuples from {} objects", tuples.len(), 3);

    // The query: objects in the region x < 0, written once.
    let mut query = LogicalPlan::new(vec![moving::schema()]);
    query.add(
        LogicalOp::Filter { pred: Pred::cmp(Expr::attr(0), CmpOp::Lt, Expr::c(0.0)) },
        vec![PortRef::Source(0)],
    );

    // Engine 1: the discrete tuple-at-a-time baseline.
    let mut discrete = Plan::compile(&query);
    let mut hits = 0;
    for t in &tuples {
        hits += discrete.push(0, t).len();
    }
    println!("\ndiscrete engine: {hits} matching tuples, {} comparisons", discrete.metrics().comparisons);

    // Engine 2: Pulse. The ground-truth segments stand in for the MODEL
    // clause (see the predictive_dashboard example for the online loop).
    let segments = MovingObjectGen::ground_truth(&cfg, 20.0);
    let mut pulse = CPlan::compile(&query).expect("filter transforms cleanly");
    let mut results = Vec::new();
    for s in &segments {
        results.extend(pulse.push(0, s));
    }
    println!(
        "pulse engine:   {} result segments from {} input segments, {} equation systems solved",
        results.len(),
        segments.len(),
        pulse.metrics().systems_solved
    );
    for r in results.iter().take(5) {
        println!(
            "  object {} satisfies x<0 during [{:.2}, {:.2})",
            r.key, r.span.lo, r.span.hi
        );
    }

    // Segments can be discretized back into tuples at any rate.
    let sampled = Sampler::new(10.0).sample(&results);
    println!("\nsampled at 10 Hz: {} tuples (discrete found {hits})", sampled.len());
    let agree = sampled.iter().all(|t| t.values[0] < 1e-6);
    println!("all sampled outputs satisfy the predicate: {agree}");
}
