//! The paper's spatial workload: detecting vessels that follow each other,
//! from AIS-style position reports.
//!
//! A self-join on distinct vessel ids computes pairwise separation, a long
//! windowed average smooths it, and a threshold filter flags persistent
//! proximity. Distances stay squared throughout (`sqrt` has no polynomial
//! form; squaring the threshold preserves the comparison).
//!
//! Run with: `cargo run --release --example vessel_following`

use pulse::core::{PulseRuntime, RuntimeConfig};
use pulse::math::CmpOp;
use pulse::model::{AttrKind, Expr, Pred, Schema};
use pulse::stream::{AggFunc, KeyJoin, LogicalOp, LogicalPlan, PortRef};
use pulse::workload::{ais, AisConfig, AisGen};

fn following_query(join_window: f64, avg_window: f64, slide: f64, threshold_m: f64) -> LogicalPlan {
    let mut lp = LogicalPlan::new(vec![ais::schema()]);
    let j = lp.add(
        LogicalOp::Join { window: join_window, pred: Pred::True, on_keys: KeyJoin::Ne },
        vec![PortRef::Source(0), PortRef::Source(0)],
    );
    let d = lp.add(
        LogicalOp::Map {
            exprs: vec![Expr::dist2(Expr::attr(0), Expr::attr(2), Expr::attr(4), Expr::attr(6))],
            schema: Schema::of(&[("dist2", AttrKind::Modeled)]),
        },
        vec![j],
    );
    let a = lp.add(
        LogicalOp::Aggregate { func: AggFunc::Avg, attr: 0, width: avg_window, slide, group_by_key: true },
        vec![d],
    );
    lp.add(
        LogicalOp::Filter {
            pred: Pred::cmp(Expr::attr(0), CmpOp::Lt, Expr::c(threshold_m * threshold_m)),
        },
        vec![a],
    );
    lp
}

fn main() {
    let cfg = AisConfig {
        vessels: 10,
        follower_pairs: 2,
        rate: 100.0,
        course_duration: 60.0,
        follow_distance: 300.0,
        noise: 2.0,
        seed: 33,
    };
    let gen = AisGen::new(cfg.clone());
    let truth = gen.follower_pairs();
    let mut gen = gen;
    let reports = gen.generate(300.0);
    println!(
        "{} position reports over 300 s; planted follower pairs: {:?}",
        reports.len(),
        truth
    );

    let query = following_query(10.0, 120.0, 10.0, 1000.0);
    let mut rt = PulseRuntime::new(
        vec![ais::stream_model()],
        &query,
        RuntimeConfig { horizon: 30.0, bound: 15.0, ..Default::default() },
    )
    .expect("following query transforms");

    let mut detections = Vec::new();
    for r in &reports {
        detections.extend(rt.on_tuple(0, r));
    }
    let stats = rt.stats();
    println!(
        "pulse: {} detection segments | {}/{} tuples absorbed, {} violations",
        detections.len(),
        stats.suppressed,
        stats.tuples_in,
        stats.violations
    );

    // Decode pair keys (leader<<32 | follower packing from the Ne-join).
    let mut pairs: Vec<(u64, u64)> = detections
        .iter()
        .map(|d| (d.key >> 32, d.key & 0xFFFF_FFFF))
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    println!("\ndetected proximate pairs (both orders of each pair appear):");
    for (a, b) in &pairs {
        let planted = truth.iter().any(|&(l, f)| (l, f) == (*a, *b) || (f, l) == (*a, *b));
        println!("  vessels {a} & {b}{}", if planted { "  ← planted follower pair" } else { "" });
    }
    let found_all = truth
        .iter()
        .all(|&(l, f)| pairs.contains(&(l, f)) || pairs.contains(&(f, l)));
    println!("\nall planted pairs detected: {found_all}");
}
