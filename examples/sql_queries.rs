//! The paper's queries, written in the query language and executed on both
//! engines — the full front-to-back pipeline: text → logical plan →
//! discrete plan AND equation systems.
//!
//! Run with: `cargo run --release --example sql_queries`

use pulse::core::{CPlan, PulseRuntime, RuntimeConfig, Sampler};
use pulse::model::{AttrKind, Schema};
use pulse::sql::{parse_query, Catalog};
use pulse::stream::Plan;
use pulse::workload::{MovingConfig, MovingObjectGen, NyseConfig, NyseGen};

fn catalog() -> Catalog {
    Catalog::new()
        .stream(
            "trades",
            Schema::of(&[("price", AttrKind::Modeled), ("qty", AttrKind::Unmodeled)]),
            Some("symbol"),
        )
        .stream(
            "objects",
            Schema::of(&[
                ("x", AttrKind::Modeled),
                ("vx", AttrKind::Coefficient),
                ("y", AttrKind::Modeled),
                ("vy", AttrKind::Coefficient),
            ]),
            Some("id"),
        )
}

fn main() {
    let catalog = catalog();

    // --- Query 1: geofence filter with a MODEL clause (Fig. 1 style) ---
    let q1 = "select * from objects \
              model x = x + vx * t, y = y + vy * t \
              where x > 50 \
              error within 1 % sample rate 10";
    println!("Q1:\n  {q1}\n");
    let compiled = parse_query(q1, &catalog).expect("Q1 compiles");
    println!(
        "  plan: {} operators, error bound {:?}, sample rate {:?}",
        compiled.plan.nodes.len(),
        compiled.error_within,
        compiled.sample_rate
    );
    // Predictive execution straight from the compiled MODEL clause.
    let model = compiled.models[0].clone().expect("MODEL clause present");
    let mut rt = PulseRuntime::new(
        vec![model],
        &compiled.plan,
        RuntimeConfig { horizon: 10.0, bound: 1.0, ..Default::default() },
    )
    .expect("transforms");
    let tuples = MovingObjectGen::new(MovingConfig {
        objects: 5,
        sample_dt: 0.1,
        leg_duration: 10.0,
        seed: 3,
        ..Default::default()
    })
    .generate(60.0);
    let mut alert_segments = Vec::new();
    for t in &tuples {
        alert_segments.extend(rt.on_tuple(0, t));
    }
    let stats = rt.stats();
    println!(
        "  {} tuples → {} alert segments ({} suppressed, {} models solved)",
        stats.tuples_in,
        alert_segments.len(),
        stats.suppressed,
        stats.segments_pushed
    );
    let alerts = Sampler::new(compiled.sample_rate.unwrap()).sample(&alert_segments);
    println!("  sampled alerts at the requested rate: {}\n", alerts.len());

    // --- Query 2: MACD, identical text on both engines ---
    let q2 = "select symbol, s.ap - l.ap as diff \
              from (select symbol, avg(price) as ap from trades [size 10 advance 2]) as s \
              join (select symbol, avg(price) as ap from trades [size 60 advance 2]) as l \
              on (s.symbol = l.symbol) within 2 \
              where s.ap > l.ap \
              error within 1 %";
    println!("Q2 (MACD):\n  {}\n", q2.replace(" \\\n", "\n  "));
    let compiled = parse_query(q2, &catalog).expect("Q2 compiles");
    let trades = NyseGen::new(NyseConfig {
        symbols: 4,
        rate: 400.0,
        drift_duration: 15.0,
        ..Default::default()
    })
    .generate(150.0);

    let mut discrete = Plan::compile(&compiled.plan);
    let mut disc_signals = Vec::new();
    for t in &trades {
        disc_signals.extend(discrete.push(0, t));
    }
    disc_signals.extend(discrete.finish());
    println!("  discrete engine: {} signals", disc_signals.len());

    let mut continuous = CPlan::compile(&compiled.plan).expect("continuous transform");
    // Historical-style run over fitted segments.
    let mean_price = trades.iter().map(|t| t.values[0]).sum::<f64>() / trades.len() as f64;
    let mut fitter = pulse::model::StreamFitter::new(
        pulse::model::FitConfig {
            max_error: compiled.error_within.unwrap() * mean_price,
            check: pulse::model::CheckMode::NewPoint,
            ..Default::default()
        },
        vec![0],
    );
    let mut segs = Vec::new();
    for t in &trades {
        segs.extend(fitter.push(t));
    }
    segs.extend(fitter.finish());
    segs.sort_by(|a, b| a.span.lo.partial_cmp(&b.span.lo).unwrap());
    let mut cont_signals = Vec::new();
    for s in &segs {
        cont_signals.extend(continuous.push(0, s));
    }
    println!(
        "  pulse (historical): {} trades → {} segments → {} signal segments, {} systems solved",
        trades.len(),
        segs.len(),
        cont_signals.len(),
        continuous.metrics().systems_solved
    );
}
