//! The paper's financial workload: a MACD (moving average convergence /
//! divergence) query over a trade-price stream, processed predictively by
//! Pulse with a 1% accuracy bound.
//!
//! Run with: `cargo run --release --example macd_trading`

use pulse::core::runtime::Predictor;
use pulse::core::{PulseRuntime, RuntimeConfig, Sampler};
use pulse::math::CmpOp;
use pulse::model::{AttrKind, Expr, Pred, Schema};
use pulse::stream::{AggFunc, KeyJoin, LogicalOp, LogicalPlan, Plan, PortRef};
use pulse::workload::{nyse, NyseConfig, NyseGen};

fn macd_query(short: f64, long: f64, slide: f64) -> LogicalPlan {
    let mut lp = LogicalPlan::new(vec![nyse::schema()]);
    let s = lp.add(
        LogicalOp::Aggregate { func: AggFunc::Avg, attr: 0, width: short, slide, group_by_key: true },
        vec![PortRef::Source(0)],
    );
    let l = lp.add(
        LogicalOp::Aggregate { func: AggFunc::Avg, attr: 0, width: long, slide, group_by_key: true },
        vec![PortRef::Source(0)],
    );
    let j = lp.add(
        LogicalOp::Join {
            window: slide,
            pred: Pred::cmp(Expr::attr_of(0, 0), CmpOp::Gt, Expr::attr_of(1, 0)),
            on_keys: KeyJoin::Eq,
        },
        vec![s, l],
    );
    lp.add(
        LogicalOp::Map {
            exprs: vec![Expr::attr(0) - Expr::attr(1)],
            schema: Schema::of(&[("diff", AttrKind::Modeled)]),
        },
        vec![j],
    );
    lp
}

fn main() {
    let (short, long, slide) = (10.0, 60.0, 2.0);
    let query = macd_query(short, long, slide);
    let trades = NyseGen::new(NyseConfig {
        symbols: 5,
        rate: 500.0,
        drift_duration: 20.0,
        tick_noise: 0.0002,
        seed: 21,
    })
    .generate(180.0);
    println!("{} trades over 180 s, 5 symbols", trades.len());

    // --- Discrete engine, for reference ---
    let mut discrete = Plan::compile(&query);
    let mut disc_signals = Vec::new();
    for t in &trades {
        disc_signals.extend(discrete.push(0, t));
    }
    disc_signals.extend(discrete.finish());
    println!("discrete engine: {} buy signals", disc_signals.len());

    // --- Pulse, predictive with 1% bound ---
    let mean_price = trades.iter().map(|t| t.values[0]).sum::<f64>() / trades.len() as f64;
    let mut rt = PulseRuntime::with_predictors(
        vec![Predictor::AdaptiveLinear(nyse::schema())],
        &query,
        RuntimeConfig { horizon: 5.0, bound: 0.01 * mean_price, ..Default::default() },
    )
    .expect("MACD transforms");
    let mut signal_segments = Vec::new();
    for t in &trades {
        signal_segments.extend(rt.on_tuple(0, t));
    }
    let stats = rt.stats();
    println!(
        "pulse: {} signal segments | {}/{} tuples absorbed by validation, {} violations, {} models solved",
        signal_segments.len(),
        stats.suppressed,
        stats.tuples_in,
        stats.violations,
        stats.segments_pushed
    );

    // The aggregate's slide parameter dictates the output sampling rate.
    let sampled = Sampler::from_slide(slide).sample(&signal_segments);
    println!("pulse sampled at the 2 s slide: {} signals", sampled.len());
    for sig in sampled.iter().take(8) {
        println!(
            "  t={:7.1}s  symbol {}  short-long spread = {:+.4}",
            sig.ts, sig.key, sig.values[0]
        );
    }
    // Signals are crossovers: the spread must be positive.
    let positive = sampled.iter().filter(|s| s.values[0] > -1e-6).count();
    println!(
        "{}/{} sampled signals have a positive spread (join predicate S.ap > L.ap)",
        positive,
        sampled.len()
    );
}
