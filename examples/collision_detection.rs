//! The paper's introductory query: collision detection between moving
//! objects.
//!
//! ```sql
//! select from objects R join objects S on (R.id <> S.id)
//! where abs(distance(R.x, R.y, S.x, S.y)) < c
//! ```
//!
//! A standard stream processor compares every pair of position samples;
//! Pulse solves the trajectory models analytically and reports the exact
//! time window of each close approach.
//!
//! Run with: `cargo run --release --example collision_detection`

use pulse::core::CPlan;
use pulse::math::{CmpOp, Poly, Span};
use pulse::model::{Expr, Pred, Segment};
use pulse::stream::{KeyJoin, LogicalOp, LogicalPlan, PortRef};
use pulse::workload::moving;

fn main() {
    const THRESHOLD: f64 = 10.0;

    // Two objects on crossing straight-line courses.
    let a = Segment::new(
        1,
        Span::new(0.0, 60.0),
        vec![Poly::linear(-100.0, 4.0), Poly::linear(0.0, 0.0)], // x: -100+4t, y: 0
        Vec::new(),
    );
    let b = Segment::new(
        2,
        Span::new(0.0, 60.0),
        vec![Poly::linear(100.0, -4.0), Poly::linear(2.0, 0.0)], // x: 100-4t, y: 2
        Vec::new(),
    );

    // distance² < c² — the polynomial form of abs(distance(..)) < c.
    let dist2 = Expr::dist2(
        Expr::attr_of(0, 0),
        Expr::attr_of(0, 2),
        Expr::attr_of(1, 0),
        Expr::attr_of(1, 2),
    );
    let mut query = LogicalPlan::new(vec![moving::schema(), moving::schema()]);
    query.add(
        LogicalOp::Join {
            window: 120.0,
            pred: Pred::cmp(dist2, CmpOp::Lt, Expr::c(THRESHOLD * THRESHOLD)),
            on_keys: KeyJoin::Ne,
        },
        vec![PortRef::Source(0), PortRef::Source(1)],
    );

    let mut plan = CPlan::compile(&query).expect("collision query transforms");
    let mut results = plan.push(0, &a);
    results.extend(plan.push(1, &b));

    println!("objects: 1 at x=-100+4t, 2 at x=100-4t (y offset 2 m)");
    println!("threshold: {THRESHOLD} m\n");
    match results.first() {
        Some(hit) => {
            println!(
                "collision window: [{:.3}, {:.3}) s (found by solving one quadratic)",
                hit.span.lo, hit.span.hi
            );
            // Closed form: |Δx| = |200 − 8t|, distance² = Δx² + 4 < 100 ⇔
            // |200−8t| < √96 ⇔ t ∈ (25 − √96/8, 25 + √96/8).
            let half = 96f64.sqrt() / 8.0;
            println!("analytic answer:  [{:.3}, {:.3}) s", 25.0 - half, 25.0 + half);
            assert!((hit.span.lo - (25.0 - half)).abs() < 1e-6);
            assert!((hit.span.hi - (25.0 + half)).abs() < 1e-6);
            println!("\nequation systems solved: {}", plan.metrics().systems_solved);
            println!(
                "a discrete engine sampling at 10 Hz would have compared ~{} tuple pairs",
                (60.0 * 10.0 * 60.0 * 10.0) as u64
            );
        }
        None => println!("no collision detected (unexpected for these courses)"),
    }
}
