/root/repo/target/release/deps/pulse_model-fcec9ffa5150fe7d.d: crates/model/src/lib.rs crates/model/src/archive.rs crates/model/src/expr.rs crates/model/src/fitting.rs crates/model/src/modelspec.rs crates/model/src/piecewise.rs crates/model/src/schema.rs crates/model/src/segment.rs crates/model/src/tuple.rs

/root/repo/target/release/deps/libpulse_model-fcec9ffa5150fe7d.rlib: crates/model/src/lib.rs crates/model/src/archive.rs crates/model/src/expr.rs crates/model/src/fitting.rs crates/model/src/modelspec.rs crates/model/src/piecewise.rs crates/model/src/schema.rs crates/model/src/segment.rs crates/model/src/tuple.rs

/root/repo/target/release/deps/libpulse_model-fcec9ffa5150fe7d.rmeta: crates/model/src/lib.rs crates/model/src/archive.rs crates/model/src/expr.rs crates/model/src/fitting.rs crates/model/src/modelspec.rs crates/model/src/piecewise.rs crates/model/src/schema.rs crates/model/src/segment.rs crates/model/src/tuple.rs

crates/model/src/lib.rs:
crates/model/src/archive.rs:
crates/model/src/expr.rs:
crates/model/src/fitting.rs:
crates/model/src/modelspec.rs:
crates/model/src/piecewise.rs:
crates/model/src/schema.rs:
crates/model/src/segment.rs:
crates/model/src/tuple.rs:
