/root/repo/target/release/deps/criterion-a3715b1567295f2c.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-a3715b1567295f2c.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-a3715b1567295f2c.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
