/root/repo/target/release/deps/pulse_bench-e0efeb0be1531b36.d: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libpulse_bench-e0efeb0be1531b36.rlib: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libpulse_bench-e0efeb0be1531b36.rmeta: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
crates/bench/src/params.rs:
crates/bench/src/queries.rs:
crates/bench/src/report.rs:
