/root/repo/target/release/deps/scaling-0c3e0abeb583bd8d.d: crates/bench/src/bin/scaling.rs

/root/repo/target/release/deps/scaling-0c3e0abeb583bd8d: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
