/root/repo/target/release/deps/crossbeam-5faf69d22dd56849.d: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/crossbeam-5faf69d22dd56849: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
