/root/repo/target/release/deps/pulse-ed716d025e254da4.d: src/lib.rs

/root/repo/target/release/deps/libpulse-ed716d025e254da4.rlib: src/lib.rs

/root/repo/target/release/deps/libpulse-ed716d025e254da4.rmeta: src/lib.rs

src/lib.rs:
