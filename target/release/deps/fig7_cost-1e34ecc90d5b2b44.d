/root/repo/target/release/deps/fig7_cost-1e34ecc90d5b2b44.d: crates/bench/src/bin/fig7_cost.rs

/root/repo/target/release/deps/fig7_cost-1e34ecc90d5b2b44: crates/bench/src/bin/fig7_cost.rs

crates/bench/src/bin/fig7_cost.rs:
