/root/repo/target/release/deps/ablation-36ccb961bfd5cbf3.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-36ccb961bfd5cbf3: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
