/root/repo/target/release/deps/pulse-90800c5870104b51.d: src/bin/pulse.rs

/root/repo/target/release/deps/pulse-90800c5870104b51: src/bin/pulse.rs

src/bin/pulse.rs:
