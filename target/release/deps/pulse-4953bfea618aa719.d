/root/repo/target/release/deps/pulse-4953bfea618aa719.d: src/bin/pulse.rs

/root/repo/target/release/deps/pulse-4953bfea618aa719: src/bin/pulse.rs

src/bin/pulse.rs:
