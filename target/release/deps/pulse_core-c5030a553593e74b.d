/root/repo/target/release/deps/pulse_core-c5030a553593e74b.d: crates/core/src/lib.rs crates/core/src/binding.rs crates/core/src/cops/mod.rs crates/core/src/cops/group.rs crates/core/src/cops/join.rs crates/core/src/cops/minmax.rs crates/core/src/cops/sumavg.rs crates/core/src/eqsys.rs crates/core/src/historical.rs crates/core/src/index.rs crates/core/src/lineage.rs crates/core/src/plan.rs crates/core/src/runtime.rs crates/core/src/sampler.rs crates/core/src/shard.rs crates/core/src/validate.rs

/root/repo/target/release/deps/libpulse_core-c5030a553593e74b.rlib: crates/core/src/lib.rs crates/core/src/binding.rs crates/core/src/cops/mod.rs crates/core/src/cops/group.rs crates/core/src/cops/join.rs crates/core/src/cops/minmax.rs crates/core/src/cops/sumavg.rs crates/core/src/eqsys.rs crates/core/src/historical.rs crates/core/src/index.rs crates/core/src/lineage.rs crates/core/src/plan.rs crates/core/src/runtime.rs crates/core/src/sampler.rs crates/core/src/shard.rs crates/core/src/validate.rs

/root/repo/target/release/deps/libpulse_core-c5030a553593e74b.rmeta: crates/core/src/lib.rs crates/core/src/binding.rs crates/core/src/cops/mod.rs crates/core/src/cops/group.rs crates/core/src/cops/join.rs crates/core/src/cops/minmax.rs crates/core/src/cops/sumavg.rs crates/core/src/eqsys.rs crates/core/src/historical.rs crates/core/src/index.rs crates/core/src/lineage.rs crates/core/src/plan.rs crates/core/src/runtime.rs crates/core/src/sampler.rs crates/core/src/shard.rs crates/core/src/validate.rs

crates/core/src/lib.rs:
crates/core/src/binding.rs:
crates/core/src/cops/mod.rs:
crates/core/src/cops/group.rs:
crates/core/src/cops/join.rs:
crates/core/src/cops/minmax.rs:
crates/core/src/cops/sumavg.rs:
crates/core/src/eqsys.rs:
crates/core/src/historical.rs:
crates/core/src/index.rs:
crates/core/src/lineage.rs:
crates/core/src/plan.rs:
crates/core/src/runtime.rs:
crates/core/src/sampler.rs:
crates/core/src/shard.rs:
crates/core/src/validate.rs:
