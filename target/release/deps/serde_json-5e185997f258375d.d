/root/repo/target/release/deps/serde_json-5e185997f258375d.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-5e185997f258375d.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-5e185997f258375d.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
