/root/repo/target/release/deps/pulse_model-f1c61481a91c5a49.d: crates/model/src/lib.rs crates/model/src/archive.rs crates/model/src/expr.rs crates/model/src/fitting.rs crates/model/src/modelspec.rs crates/model/src/piecewise.rs crates/model/src/schema.rs crates/model/src/segment.rs crates/model/src/tuple.rs

/root/repo/target/release/deps/pulse_model-f1c61481a91c5a49: crates/model/src/lib.rs crates/model/src/archive.rs crates/model/src/expr.rs crates/model/src/fitting.rs crates/model/src/modelspec.rs crates/model/src/piecewise.rs crates/model/src/schema.rs crates/model/src/segment.rs crates/model/src/tuple.rs

crates/model/src/lib.rs:
crates/model/src/archive.rs:
crates/model/src/expr.rs:
crates/model/src/fitting.rs:
crates/model/src/modelspec.rs:
crates/model/src/piecewise.rs:
crates/model/src/schema.rs:
crates/model/src/segment.rs:
crates/model/src/tuple.rs:
