/root/repo/target/release/deps/fig8_historical-833a9bd235811d44.d: crates/bench/src/bin/fig8_historical.rs

/root/repo/target/release/deps/fig8_historical-833a9bd235811d44: crates/bench/src/bin/fig8_historical.rs

crates/bench/src/bin/fig8_historical.rs:
