/root/repo/target/release/deps/fig9_nyse-4c8b9fcad2fdb7d1.d: crates/bench/src/bin/fig9_nyse.rs

/root/repo/target/release/deps/fig9_nyse-4c8b9fcad2fdb7d1: crates/bench/src/bin/fig9_nyse.rs

crates/bench/src/bin/fig9_nyse.rs:
