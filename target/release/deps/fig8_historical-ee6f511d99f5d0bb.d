/root/repo/target/release/deps/fig8_historical-ee6f511d99f5d0bb.d: crates/bench/src/bin/fig8_historical.rs

/root/repo/target/release/deps/fig8_historical-ee6f511d99f5d0bb: crates/bench/src/bin/fig8_historical.rs

crates/bench/src/bin/fig8_historical.rs:
