/root/repo/target/release/deps/fig9_ais-fd40165984dcd7f6.d: crates/bench/src/bin/fig9_ais.rs

/root/repo/target/release/deps/fig9_ais-fd40165984dcd7f6: crates/bench/src/bin/fig9_ais.rs

crates/bench/src/bin/fig9_ais.rs:
