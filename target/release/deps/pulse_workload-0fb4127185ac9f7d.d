/root/repo/target/release/deps/pulse_workload-0fb4127185ac9f7d.d: crates/workload/src/lib.rs crates/workload/src/ais.rs crates/workload/src/moving.rs crates/workload/src/nyse.rs crates/workload/src/replay.rs

/root/repo/target/release/deps/pulse_workload-0fb4127185ac9f7d: crates/workload/src/lib.rs crates/workload/src/ais.rs crates/workload/src/moving.rs crates/workload/src/nyse.rs crates/workload/src/replay.rs

crates/workload/src/lib.rs:
crates/workload/src/ais.rs:
crates/workload/src/moving.rs:
crates/workload/src/nyse.rs:
crates/workload/src/replay.rs:
