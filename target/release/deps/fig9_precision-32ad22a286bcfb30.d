/root/repo/target/release/deps/fig9_precision-32ad22a286bcfb30.d: crates/bench/src/bin/fig9_precision.rs

/root/repo/target/release/deps/fig9_precision-32ad22a286bcfb30: crates/bench/src/bin/fig9_precision.rs

crates/bench/src/bin/fig9_precision.rs:
