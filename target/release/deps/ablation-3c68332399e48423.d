/root/repo/target/release/deps/ablation-3c68332399e48423.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-3c68332399e48423: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
