/root/repo/target/release/deps/fig9_precision-04bfec290d8ffc7d.d: crates/bench/src/bin/fig9_precision.rs

/root/repo/target/release/deps/fig9_precision-04bfec290d8ffc7d: crates/bench/src/bin/fig9_precision.rs

crates/bench/src/bin/fig9_precision.rs:
