/root/repo/target/release/deps/pulse-5782fc7b7e14c104.d: src/bin/pulse.rs

/root/repo/target/release/deps/pulse-5782fc7b7e14c104: src/bin/pulse.rs

src/bin/pulse.rs:
