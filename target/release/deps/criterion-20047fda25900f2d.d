/root/repo/target/release/deps/criterion-20047fda25900f2d.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-20047fda25900f2d: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
