/root/repo/target/release/deps/figures-a44f56fd99b0f02a.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-a44f56fd99b0f02a: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
