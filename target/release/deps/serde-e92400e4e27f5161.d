/root/repo/target/release/deps/serde-e92400e4e27f5161.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/serde-e92400e4e27f5161: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
