/root/repo/target/release/deps/pulse_sql-7dab1476714bfb93.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/compile.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs

/root/repo/target/release/deps/libpulse_sql-7dab1476714bfb93.rlib: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/compile.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs

/root/repo/target/release/deps/libpulse_sql-7dab1476714bfb93.rmeta: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/compile.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/compile.rs:
crates/sql/src/lexer.rs:
crates/sql/src/parser.rs:
