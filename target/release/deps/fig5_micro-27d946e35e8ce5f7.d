/root/repo/target/release/deps/fig5_micro-27d946e35e8ce5f7.d: crates/bench/src/bin/fig5_micro.rs

/root/repo/target/release/deps/fig5_micro-27d946e35e8ce5f7: crates/bench/src/bin/fig5_micro.rs

crates/bench/src/bin/fig5_micro.rs:
