/root/repo/target/release/deps/rand-b99d08e642054f23.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/rand-b99d08e642054f23: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
