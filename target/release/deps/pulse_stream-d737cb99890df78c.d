/root/repo/target/release/deps/pulse_stream-d737cb99890df78c.d: crates/stream/src/lib.rs crates/stream/src/explain.rs crates/stream/src/logical.rs crates/stream/src/metrics.rs crates/stream/src/ops.rs crates/stream/src/parallel.rs crates/stream/src/plan.rs

/root/repo/target/release/deps/pulse_stream-d737cb99890df78c: crates/stream/src/lib.rs crates/stream/src/explain.rs crates/stream/src/logical.rs crates/stream/src/metrics.rs crates/stream/src/ops.rs crates/stream/src/parallel.rs crates/stream/src/plan.rs

crates/stream/src/lib.rs:
crates/stream/src/explain.rs:
crates/stream/src/logical.rs:
crates/stream/src/metrics.rs:
crates/stream/src/ops.rs:
crates/stream/src/parallel.rs:
crates/stream/src/plan.rs:
