/root/repo/target/release/deps/obs_overhead-faa2790f54ae1846.d: crates/bench/benches/obs_overhead.rs

/root/repo/target/release/deps/obs_overhead-faa2790f54ae1846: crates/bench/benches/obs_overhead.rs

crates/bench/benches/obs_overhead.rs:
