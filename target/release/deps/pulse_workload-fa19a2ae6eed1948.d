/root/repo/target/release/deps/pulse_workload-fa19a2ae6eed1948.d: crates/workload/src/lib.rs crates/workload/src/ais.rs crates/workload/src/moving.rs crates/workload/src/nyse.rs crates/workload/src/replay.rs

/root/repo/target/release/deps/libpulse_workload-fa19a2ae6eed1948.rlib: crates/workload/src/lib.rs crates/workload/src/ais.rs crates/workload/src/moving.rs crates/workload/src/nyse.rs crates/workload/src/replay.rs

/root/repo/target/release/deps/libpulse_workload-fa19a2ae6eed1948.rmeta: crates/workload/src/lib.rs crates/workload/src/ais.rs crates/workload/src/moving.rs crates/workload/src/nyse.rs crates/workload/src/replay.rs

crates/workload/src/lib.rs:
crates/workload/src/ais.rs:
crates/workload/src/moving.rs:
crates/workload/src/nyse.rs:
crates/workload/src/replay.rs:
