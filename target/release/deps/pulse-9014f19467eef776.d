/root/repo/target/release/deps/pulse-9014f19467eef776.d: src/lib.rs

/root/repo/target/release/deps/pulse-9014f19467eef776: src/lib.rs

src/lib.rs:
