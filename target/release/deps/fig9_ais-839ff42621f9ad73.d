/root/repo/target/release/deps/fig9_ais-839ff42621f9ad73.d: crates/bench/src/bin/fig9_ais.rs

/root/repo/target/release/deps/fig9_ais-839ff42621f9ad73: crates/bench/src/bin/fig9_ais.rs

crates/bench/src/bin/fig9_ais.rs:
