/root/repo/target/release/deps/fig9_precision-58aa88a606f3e3d8.d: crates/bench/src/bin/fig9_precision.rs

/root/repo/target/release/deps/fig9_precision-58aa88a606f3e3d8: crates/bench/src/bin/fig9_precision.rs

crates/bench/src/bin/fig9_precision.rs:
