/root/repo/target/release/deps/figures-d987104428565018.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-d987104428565018: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
