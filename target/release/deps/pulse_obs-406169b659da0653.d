/root/repo/target/release/deps/pulse_obs-406169b659da0653.d: crates/obs/src/lib.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libpulse_obs-406169b659da0653.rlib: crates/obs/src/lib.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libpulse_obs-406169b659da0653.rmeta: crates/obs/src/lib.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/registry.rs:
crates/obs/src/snapshot.rs:
crates/obs/src/span.rs:
