/root/repo/target/release/deps/operators-38a9fb9a77ffb9c2.d: crates/bench/benches/operators.rs

/root/repo/target/release/deps/operators-38a9fb9a77ffb9c2: crates/bench/benches/operators.rs

crates/bench/benches/operators.rs:
