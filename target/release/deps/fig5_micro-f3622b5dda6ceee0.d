/root/repo/target/release/deps/fig5_micro-f3622b5dda6ceee0.d: crates/bench/src/bin/fig5_micro.rs

/root/repo/target/release/deps/fig5_micro-f3622b5dda6ceee0: crates/bench/src/bin/fig5_micro.rs

crates/bench/src/bin/fig5_micro.rs:
