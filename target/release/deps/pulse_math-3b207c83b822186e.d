/root/repo/target/release/deps/pulse_math-3b207c83b822186e.d: crates/math/src/lib.rs crates/math/src/cmp.rs crates/math/src/interval.rs crates/math/src/linsys.rs crates/math/src/poly.rs crates/math/src/roots.rs crates/math/src/sturm.rs

/root/repo/target/release/deps/pulse_math-3b207c83b822186e: crates/math/src/lib.rs crates/math/src/cmp.rs crates/math/src/interval.rs crates/math/src/linsys.rs crates/math/src/poly.rs crates/math/src/roots.rs crates/math/src/sturm.rs

crates/math/src/lib.rs:
crates/math/src/cmp.rs:
crates/math/src/interval.rs:
crates/math/src/linsys.rs:
crates/math/src/poly.rs:
crates/math/src/roots.rs:
crates/math/src/sturm.rs:
