/root/repo/target/release/deps/pulse_bench-782508275f70c1ca.d: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs

/root/repo/target/release/deps/pulse_bench-782508275f70c1ca: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
crates/bench/src/params.rs:
crates/bench/src/queries.rs:
crates/bench/src/report.rs:
