/root/repo/target/release/deps/pulse_bench-29988274824960e6.d: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libpulse_bench-29988274824960e6.rlib: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libpulse_bench-29988274824960e6.rmeta: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
crates/bench/src/params.rs:
crates/bench/src/queries.rs:
crates/bench/src/report.rs:
