/root/repo/target/release/deps/pulse_sql-bc2daf46f8d9840f.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/compile.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs

/root/repo/target/release/deps/pulse_sql-bc2daf46f8d9840f: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/compile.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/compile.rs:
crates/sql/src/lexer.rs:
crates/sql/src/parser.rs:
