/root/repo/target/release/deps/obs_overhead-24a2a1b5cecf86c8.d: crates/bench/benches/obs_overhead.rs

/root/repo/target/release/deps/obs_overhead-24a2a1b5cecf86c8: crates/bench/benches/obs_overhead.rs

crates/bench/benches/obs_overhead.rs:
