/root/repo/target/release/deps/figures-c4fc8bcb8baa2423.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-c4fc8bcb8baa2423: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
