/root/repo/target/release/deps/serde_derive-6db80340e9dc3668.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-6db80340e9dc3668: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
