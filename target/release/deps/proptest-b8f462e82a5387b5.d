/root/repo/target/release/deps/proptest-b8f462e82a5387b5.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-b8f462e82a5387b5: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
