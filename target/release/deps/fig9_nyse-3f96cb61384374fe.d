/root/repo/target/release/deps/fig9_nyse-3f96cb61384374fe.d: crates/bench/src/bin/fig9_nyse.rs

/root/repo/target/release/deps/fig9_nyse-3f96cb61384374fe: crates/bench/src/bin/fig9_nyse.rs

crates/bench/src/bin/fig9_nyse.rs:
