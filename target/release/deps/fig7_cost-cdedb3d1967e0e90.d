/root/repo/target/release/deps/fig7_cost-cdedb3d1967e0e90.d: crates/bench/src/bin/fig7_cost.rs

/root/repo/target/release/deps/fig7_cost-cdedb3d1967e0e90: crates/bench/src/bin/fig7_cost.rs

crates/bench/src/bin/fig7_cost.rs:
