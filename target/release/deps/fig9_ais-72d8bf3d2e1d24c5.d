/root/repo/target/release/deps/fig9_ais-72d8bf3d2e1d24c5.d: crates/bench/src/bin/fig9_ais.rs

/root/repo/target/release/deps/fig9_ais-72d8bf3d2e1d24c5: crates/bench/src/bin/fig9_ais.rs

crates/bench/src/bin/fig9_ais.rs:
