/root/repo/target/release/deps/ablation-c6374bf67bf5a9dd.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-c6374bf67bf5a9dd: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
