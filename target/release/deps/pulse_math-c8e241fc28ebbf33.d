/root/repo/target/release/deps/pulse_math-c8e241fc28ebbf33.d: crates/math/src/lib.rs crates/math/src/cmp.rs crates/math/src/interval.rs crates/math/src/linsys.rs crates/math/src/poly.rs crates/math/src/roots.rs crates/math/src/sturm.rs

/root/repo/target/release/deps/libpulse_math-c8e241fc28ebbf33.rlib: crates/math/src/lib.rs crates/math/src/cmp.rs crates/math/src/interval.rs crates/math/src/linsys.rs crates/math/src/poly.rs crates/math/src/roots.rs crates/math/src/sturm.rs

/root/repo/target/release/deps/libpulse_math-c8e241fc28ebbf33.rmeta: crates/math/src/lib.rs crates/math/src/cmp.rs crates/math/src/interval.rs crates/math/src/linsys.rs crates/math/src/poly.rs crates/math/src/roots.rs crates/math/src/sturm.rs

crates/math/src/lib.rs:
crates/math/src/cmp.rs:
crates/math/src/interval.rs:
crates/math/src/linsys.rs:
crates/math/src/poly.rs:
crates/math/src/roots.rs:
crates/math/src/sturm.rs:
