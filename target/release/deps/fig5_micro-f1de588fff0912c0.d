/root/repo/target/release/deps/fig5_micro-f1de588fff0912c0.d: crates/bench/src/bin/fig5_micro.rs

/root/repo/target/release/deps/fig5_micro-f1de588fff0912c0: crates/bench/src/bin/fig5_micro.rs

crates/bench/src/bin/fig5_micro.rs:
