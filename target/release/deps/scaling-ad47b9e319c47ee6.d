/root/repo/target/release/deps/scaling-ad47b9e319c47ee6.d: crates/bench/src/bin/scaling.rs

/root/repo/target/release/deps/scaling-ad47b9e319c47ee6: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
