/root/repo/target/release/deps/pulse_stream-3fc25b60bbb6a05a.d: crates/stream/src/lib.rs crates/stream/src/explain.rs crates/stream/src/logical.rs crates/stream/src/metrics.rs crates/stream/src/ops.rs crates/stream/src/parallel.rs crates/stream/src/plan.rs

/root/repo/target/release/deps/libpulse_stream-3fc25b60bbb6a05a.rlib: crates/stream/src/lib.rs crates/stream/src/explain.rs crates/stream/src/logical.rs crates/stream/src/metrics.rs crates/stream/src/ops.rs crates/stream/src/parallel.rs crates/stream/src/plan.rs

/root/repo/target/release/deps/libpulse_stream-3fc25b60bbb6a05a.rmeta: crates/stream/src/lib.rs crates/stream/src/explain.rs crates/stream/src/logical.rs crates/stream/src/metrics.rs crates/stream/src/ops.rs crates/stream/src/parallel.rs crates/stream/src/plan.rs

crates/stream/src/lib.rs:
crates/stream/src/explain.rs:
crates/stream/src/logical.rs:
crates/stream/src/metrics.rs:
crates/stream/src/ops.rs:
crates/stream/src/parallel.rs:
crates/stream/src/plan.rs:
