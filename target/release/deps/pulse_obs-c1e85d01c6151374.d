/root/repo/target/release/deps/pulse_obs-c1e85d01c6151374.d: crates/obs/src/lib.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/span.rs

/root/repo/target/release/deps/pulse_obs-c1e85d01c6151374: crates/obs/src/lib.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/registry.rs:
crates/obs/src/snapshot.rs:
crates/obs/src/span.rs:
