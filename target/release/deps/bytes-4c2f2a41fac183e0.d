/root/repo/target/release/deps/bytes-4c2f2a41fac183e0.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/bytes-4c2f2a41fac183e0: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
