/root/repo/target/release/deps/parking_lot-4da1b6120304fbc8.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/parking_lot-4da1b6120304fbc8: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
