/root/repo/target/release/deps/pulse-d00200e252681c77.d: src/lib.rs

/root/repo/target/release/deps/libpulse-d00200e252681c77.rlib: src/lib.rs

/root/repo/target/release/deps/libpulse-d00200e252681c77.rmeta: src/lib.rs

src/lib.rs:
