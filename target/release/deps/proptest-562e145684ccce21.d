/root/repo/target/release/deps/proptest-562e145684ccce21.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-562e145684ccce21.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-562e145684ccce21.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
