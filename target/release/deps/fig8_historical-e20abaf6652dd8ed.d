/root/repo/target/release/deps/fig8_historical-e20abaf6652dd8ed.d: crates/bench/src/bin/fig8_historical.rs

/root/repo/target/release/deps/fig8_historical-e20abaf6652dd8ed: crates/bench/src/bin/fig8_historical.rs

crates/bench/src/bin/fig8_historical.rs:
