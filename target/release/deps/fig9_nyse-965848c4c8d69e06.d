/root/repo/target/release/deps/fig9_nyse-965848c4c8d69e06.d: crates/bench/src/bin/fig9_nyse.rs

/root/repo/target/release/deps/fig9_nyse-965848c4c8d69e06: crates/bench/src/bin/fig9_nyse.rs

crates/bench/src/bin/fig9_nyse.rs:
