/root/repo/target/release/deps/fig7_cost-4ad4a2f6d429ad8a.d: crates/bench/src/bin/fig7_cost.rs

/root/repo/target/release/deps/fig7_cost-4ad4a2f6d429ad8a: crates/bench/src/bin/fig7_cost.rs

crates/bench/src/bin/fig7_cost.rs:
