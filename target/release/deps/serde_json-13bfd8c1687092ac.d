/root/repo/target/release/deps/serde_json-13bfd8c1687092ac.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/serde_json-13bfd8c1687092ac: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
