/root/repo/target/release/deps/scaling-01ec48920997d6c8.d: crates/bench/src/bin/scaling.rs

/root/repo/target/release/deps/scaling-01ec48920997d6c8: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
