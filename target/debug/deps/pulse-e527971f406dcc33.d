/root/repo/target/debug/deps/pulse-e527971f406dcc33.d: src/bin/pulse.rs

/root/repo/target/debug/deps/pulse-e527971f406dcc33: src/bin/pulse.rs

src/bin/pulse.rs:
