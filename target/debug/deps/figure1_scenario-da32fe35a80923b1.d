/root/repo/target/debug/deps/figure1_scenario-da32fe35a80923b1.d: tests/figure1_scenario.rs

/root/repo/target/debug/deps/figure1_scenario-da32fe35a80923b1: tests/figure1_scenario.rs

tests/figure1_scenario.rs:
