/root/repo/target/debug/deps/validation_properties-a5bd453e37492510.d: tests/validation_properties.rs

/root/repo/target/debug/deps/validation_properties-a5bd453e37492510: tests/validation_properties.rs

tests/validation_properties.rs:
