/root/repo/target/debug/deps/pulse-6dce5ecf6e41234d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpulse-6dce5ecf6e41234d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
