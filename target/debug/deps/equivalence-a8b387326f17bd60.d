/root/repo/target/debug/deps/equivalence-a8b387326f17bd60.d: tests/equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence-a8b387326f17bd60.rmeta: tests/equivalence.rs Cargo.toml

tests/equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
