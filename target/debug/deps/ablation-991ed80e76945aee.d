/root/repo/target/debug/deps/ablation-991ed80e76945aee.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-991ed80e76945aee.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
