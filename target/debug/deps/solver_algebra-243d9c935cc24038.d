/root/repo/target/debug/deps/solver_algebra-243d9c935cc24038.d: tests/solver_algebra.rs Cargo.toml

/root/repo/target/debug/deps/libsolver_algebra-243d9c935cc24038.rmeta: tests/solver_algebra.rs Cargo.toml

tests/solver_algebra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
