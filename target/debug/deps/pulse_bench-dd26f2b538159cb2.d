/root/repo/target/debug/deps/pulse_bench-dd26f2b538159cb2.d: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libpulse_bench-dd26f2b538159cb2.rlib: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libpulse_bench-dd26f2b538159cb2.rmeta: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
crates/bench/src/params.rs:
crates/bench/src/queries.rs:
crates/bench/src/report.rs:
