/root/repo/target/debug/deps/engine_invariants-2893e65b36a943ce.d: tests/engine_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libengine_invariants-2893e65b36a943ce.rmeta: tests/engine_invariants.rs Cargo.toml

tests/engine_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
