/root/repo/target/debug/deps/pulse_math-82eea0a319c4879f.d: crates/math/src/lib.rs crates/math/src/cmp.rs crates/math/src/interval.rs crates/math/src/linsys.rs crates/math/src/poly.rs crates/math/src/roots.rs crates/math/src/sturm.rs Cargo.toml

/root/repo/target/debug/deps/libpulse_math-82eea0a319c4879f.rmeta: crates/math/src/lib.rs crates/math/src/cmp.rs crates/math/src/interval.rs crates/math/src/linsys.rs crates/math/src/poly.rs crates/math/src/roots.rs crates/math/src/sturm.rs Cargo.toml

crates/math/src/lib.rs:
crates/math/src/cmp.rs:
crates/math/src/interval.rs:
crates/math/src/linsys.rs:
crates/math/src/poly.rs:
crates/math/src/roots.rs:
crates/math/src/sturm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
