/root/repo/target/debug/deps/ablation-4ff9980c4236cfa1.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-4ff9980c4236cfa1.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
