/root/repo/target/debug/deps/macd_pipeline-73614bbdf8d54860.d: tests/macd_pipeline.rs

/root/repo/target/debug/deps/macd_pipeline-73614bbdf8d54860: tests/macd_pipeline.rs

tests/macd_pipeline.rs:
