/root/repo/target/debug/deps/pulse_sql-70de76a1c23a2874.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/compile.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs

/root/repo/target/debug/deps/pulse_sql-70de76a1c23a2874: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/compile.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/compile.rs:
crates/sql/src/lexer.rs:
crates/sql/src/parser.rs:
