/root/repo/target/debug/deps/fig7_cost-887621fcaf691231.d: crates/bench/src/bin/fig7_cost.rs

/root/repo/target/debug/deps/fig7_cost-887621fcaf691231: crates/bench/src/bin/fig7_cost.rs

crates/bench/src/bin/fig7_cost.rs:
