/root/repo/target/debug/deps/fig7_cost-97e84e0b303224b0.d: crates/bench/src/bin/fig7_cost.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_cost-97e84e0b303224b0.rmeta: crates/bench/src/bin/fig7_cost.rs Cargo.toml

crates/bench/src/bin/fig7_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
