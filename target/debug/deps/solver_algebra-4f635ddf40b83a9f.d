/root/repo/target/debug/deps/solver_algebra-4f635ddf40b83a9f.d: tests/solver_algebra.rs

/root/repo/target/debug/deps/solver_algebra-4f635ddf40b83a9f: tests/solver_algebra.rs

tests/solver_algebra.rs:
