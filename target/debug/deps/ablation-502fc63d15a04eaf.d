/root/repo/target/debug/deps/ablation-502fc63d15a04eaf.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-502fc63d15a04eaf: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
