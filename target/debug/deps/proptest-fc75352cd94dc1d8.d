/root/repo/target/debug/deps/proptest-fc75352cd94dc1d8.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-fc75352cd94dc1d8.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
