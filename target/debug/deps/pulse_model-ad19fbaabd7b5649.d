/root/repo/target/debug/deps/pulse_model-ad19fbaabd7b5649.d: crates/model/src/lib.rs crates/model/src/archive.rs crates/model/src/expr.rs crates/model/src/fitting.rs crates/model/src/modelspec.rs crates/model/src/piecewise.rs crates/model/src/schema.rs crates/model/src/segment.rs crates/model/src/tuple.rs

/root/repo/target/debug/deps/libpulse_model-ad19fbaabd7b5649.rlib: crates/model/src/lib.rs crates/model/src/archive.rs crates/model/src/expr.rs crates/model/src/fitting.rs crates/model/src/modelspec.rs crates/model/src/piecewise.rs crates/model/src/schema.rs crates/model/src/segment.rs crates/model/src/tuple.rs

/root/repo/target/debug/deps/libpulse_model-ad19fbaabd7b5649.rmeta: crates/model/src/lib.rs crates/model/src/archive.rs crates/model/src/expr.rs crates/model/src/fitting.rs crates/model/src/modelspec.rs crates/model/src/piecewise.rs crates/model/src/schema.rs crates/model/src/segment.rs crates/model/src/tuple.rs

crates/model/src/lib.rs:
crates/model/src/archive.rs:
crates/model/src/expr.rs:
crates/model/src/fitting.rs:
crates/model/src/modelspec.rs:
crates/model/src/piecewise.rs:
crates/model/src/schema.rs:
crates/model/src/segment.rs:
crates/model/src/tuple.rs:
