/root/repo/target/debug/deps/pulse_bench-4f12f85d9c650724.d: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libpulse_bench-4f12f85d9c650724.rlib: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libpulse_bench-4f12f85d9c650724.rmeta: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
crates/bench/src/params.rs:
crates/bench/src/queries.rs:
crates/bench/src/report.rs:
