/root/repo/target/debug/deps/pulse_stream-85ec595eab4a0214.d: crates/stream/src/lib.rs crates/stream/src/explain.rs crates/stream/src/logical.rs crates/stream/src/metrics.rs crates/stream/src/ops.rs crates/stream/src/parallel.rs crates/stream/src/plan.rs

/root/repo/target/debug/deps/pulse_stream-85ec595eab4a0214: crates/stream/src/lib.rs crates/stream/src/explain.rs crates/stream/src/logical.rs crates/stream/src/metrics.rs crates/stream/src/ops.rs crates/stream/src/parallel.rs crates/stream/src/plan.rs

crates/stream/src/lib.rs:
crates/stream/src/explain.rs:
crates/stream/src/logical.rs:
crates/stream/src/metrics.rs:
crates/stream/src/ops.rs:
crates/stream/src/parallel.rs:
crates/stream/src/plan.rs:
