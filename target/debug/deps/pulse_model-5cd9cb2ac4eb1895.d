/root/repo/target/debug/deps/pulse_model-5cd9cb2ac4eb1895.d: crates/model/src/lib.rs crates/model/src/archive.rs crates/model/src/expr.rs crates/model/src/fitting.rs crates/model/src/modelspec.rs crates/model/src/piecewise.rs crates/model/src/schema.rs crates/model/src/segment.rs crates/model/src/tuple.rs Cargo.toml

/root/repo/target/debug/deps/libpulse_model-5cd9cb2ac4eb1895.rmeta: crates/model/src/lib.rs crates/model/src/archive.rs crates/model/src/expr.rs crates/model/src/fitting.rs crates/model/src/modelspec.rs crates/model/src/piecewise.rs crates/model/src/schema.rs crates/model/src/segment.rs crates/model/src/tuple.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/archive.rs:
crates/model/src/expr.rs:
crates/model/src/fitting.rs:
crates/model/src/modelspec.rs:
crates/model/src/piecewise.rs:
crates/model/src/schema.rs:
crates/model/src/segment.rs:
crates/model/src/tuple.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
