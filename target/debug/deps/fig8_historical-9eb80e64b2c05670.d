/root/repo/target/debug/deps/fig8_historical-9eb80e64b2c05670.d: crates/bench/src/bin/fig8_historical.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_historical-9eb80e64b2c05670.rmeta: crates/bench/src/bin/fig8_historical.rs Cargo.toml

crates/bench/src/bin/fig8_historical.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
