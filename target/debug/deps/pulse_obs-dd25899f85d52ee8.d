/root/repo/target/debug/deps/pulse_obs-dd25899f85d52ee8.d: crates/obs/src/lib.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/pulse_obs-dd25899f85d52ee8: crates/obs/src/lib.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/registry.rs:
crates/obs/src/snapshot.rs:
crates/obs/src/span.rs:
