/root/repo/target/debug/deps/fig9_precision-de1ddb6d9f438a6e.d: crates/bench/src/bin/fig9_precision.rs

/root/repo/target/debug/deps/fig9_precision-de1ddb6d9f438a6e: crates/bench/src/bin/fig9_precision.rs

crates/bench/src/bin/fig9_precision.rs:
