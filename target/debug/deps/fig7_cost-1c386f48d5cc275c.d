/root/repo/target/debug/deps/fig7_cost-1c386f48d5cc275c.d: crates/bench/src/bin/fig7_cost.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_cost-1c386f48d5cc275c.rmeta: crates/bench/src/bin/fig7_cost.rs Cargo.toml

crates/bench/src/bin/fig7_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
