/root/repo/target/debug/deps/scaling-2d3e6b24b772bd3c.d: crates/bench/src/bin/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-2d3e6b24b772bd3c.rmeta: crates/bench/src/bin/scaling.rs Cargo.toml

crates/bench/src/bin/scaling.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
