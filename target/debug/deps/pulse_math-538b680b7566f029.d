/root/repo/target/debug/deps/pulse_math-538b680b7566f029.d: crates/math/src/lib.rs crates/math/src/cmp.rs crates/math/src/interval.rs crates/math/src/linsys.rs crates/math/src/poly.rs crates/math/src/roots.rs crates/math/src/sturm.rs

/root/repo/target/debug/deps/libpulse_math-538b680b7566f029.rlib: crates/math/src/lib.rs crates/math/src/cmp.rs crates/math/src/interval.rs crates/math/src/linsys.rs crates/math/src/poly.rs crates/math/src/roots.rs crates/math/src/sturm.rs

/root/repo/target/debug/deps/libpulse_math-538b680b7566f029.rmeta: crates/math/src/lib.rs crates/math/src/cmp.rs crates/math/src/interval.rs crates/math/src/linsys.rs crates/math/src/poly.rs crates/math/src/roots.rs crates/math/src/sturm.rs

crates/math/src/lib.rs:
crates/math/src/cmp.rs:
crates/math/src/interval.rs:
crates/math/src/linsys.rs:
crates/math/src/poly.rs:
crates/math/src/roots.rs:
crates/math/src/sturm.rs:
