/root/repo/target/debug/deps/pulse_sql-d5a02a1dfc4f2b66.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/compile.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs

/root/repo/target/debug/deps/libpulse_sql-d5a02a1dfc4f2b66.rlib: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/compile.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs

/root/repo/target/debug/deps/libpulse_sql-d5a02a1dfc4f2b66.rmeta: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/compile.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/compile.rs:
crates/sql/src/lexer.rs:
crates/sql/src/parser.rs:
