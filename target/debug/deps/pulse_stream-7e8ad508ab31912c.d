/root/repo/target/debug/deps/pulse_stream-7e8ad508ab31912c.d: crates/stream/src/lib.rs crates/stream/src/explain.rs crates/stream/src/logical.rs crates/stream/src/metrics.rs crates/stream/src/ops.rs crates/stream/src/parallel.rs crates/stream/src/plan.rs

/root/repo/target/debug/deps/libpulse_stream-7e8ad508ab31912c.rlib: crates/stream/src/lib.rs crates/stream/src/explain.rs crates/stream/src/logical.rs crates/stream/src/metrics.rs crates/stream/src/ops.rs crates/stream/src/parallel.rs crates/stream/src/plan.rs

/root/repo/target/debug/deps/libpulse_stream-7e8ad508ab31912c.rmeta: crates/stream/src/lib.rs crates/stream/src/explain.rs crates/stream/src/logical.rs crates/stream/src/metrics.rs crates/stream/src/ops.rs crates/stream/src/parallel.rs crates/stream/src/plan.rs

crates/stream/src/lib.rs:
crates/stream/src/explain.rs:
crates/stream/src/logical.rs:
crates/stream/src/metrics.rs:
crates/stream/src/ops.rs:
crates/stream/src/parallel.rs:
crates/stream/src/plan.rs:
