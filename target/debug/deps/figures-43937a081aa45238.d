/root/repo/target/debug/deps/figures-43937a081aa45238.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-43937a081aa45238: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
