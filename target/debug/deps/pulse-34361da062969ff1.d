/root/repo/target/debug/deps/pulse-34361da062969ff1.d: src/bin/pulse.rs

/root/repo/target/debug/deps/pulse-34361da062969ff1: src/bin/pulse.rs

src/bin/pulse.rs:
