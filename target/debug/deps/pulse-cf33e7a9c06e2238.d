/root/repo/target/debug/deps/pulse-cf33e7a9c06e2238.d: src/bin/pulse.rs

/root/repo/target/debug/deps/pulse-cf33e7a9c06e2238: src/bin/pulse.rs

src/bin/pulse.rs:
