/root/repo/target/debug/deps/fig5_micro-a8dc33cc7f3a48f5.d: crates/bench/src/bin/fig5_micro.rs

/root/repo/target/debug/deps/fig5_micro-a8dc33cc7f3a48f5: crates/bench/src/bin/fig5_micro.rs

crates/bench/src/bin/fig5_micro.rs:
