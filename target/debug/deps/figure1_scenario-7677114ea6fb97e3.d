/root/repo/target/debug/deps/figure1_scenario-7677114ea6fb97e3.d: tests/figure1_scenario.rs

/root/repo/target/debug/deps/figure1_scenario-7677114ea6fb97e3: tests/figure1_scenario.rs

tests/figure1_scenario.rs:
