/root/repo/target/debug/deps/solver_algebra-c39e4f0212e5c52f.d: tests/solver_algebra.rs

/root/repo/target/debug/deps/solver_algebra-c39e4f0212e5c52f: tests/solver_algebra.rs

tests/solver_algebra.rs:
