/root/repo/target/debug/deps/fig8_historical-6e0ec830af62d3b5.d: crates/bench/src/bin/fig8_historical.rs

/root/repo/target/debug/deps/fig8_historical-6e0ec830af62d3b5: crates/bench/src/bin/fig8_historical.rs

crates/bench/src/bin/fig8_historical.rs:
