/root/repo/target/debug/deps/pulse-4e2821ef24385e60.d: src/bin/pulse.rs

/root/repo/target/debug/deps/pulse-4e2821ef24385e60: src/bin/pulse.rs

src/bin/pulse.rs:
