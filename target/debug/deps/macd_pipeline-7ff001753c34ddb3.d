/root/repo/target/debug/deps/macd_pipeline-7ff001753c34ddb3.d: tests/macd_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libmacd_pipeline-7ff001753c34ddb3.rmeta: tests/macd_pipeline.rs Cargo.toml

tests/macd_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
