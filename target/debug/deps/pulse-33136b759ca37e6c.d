/root/repo/target/debug/deps/pulse-33136b759ca37e6c.d: src/lib.rs

/root/repo/target/debug/deps/pulse-33136b759ca37e6c: src/lib.rs

src/lib.rs:
