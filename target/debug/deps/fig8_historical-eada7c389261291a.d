/root/repo/target/debug/deps/fig8_historical-eada7c389261291a.d: crates/bench/src/bin/fig8_historical.rs

/root/repo/target/debug/deps/fig8_historical-eada7c389261291a: crates/bench/src/bin/fig8_historical.rs

crates/bench/src/bin/fig8_historical.rs:
