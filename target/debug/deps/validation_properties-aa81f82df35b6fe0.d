/root/repo/target/debug/deps/validation_properties-aa81f82df35b6fe0.d: tests/validation_properties.rs

/root/repo/target/debug/deps/validation_properties-aa81f82df35b6fe0: tests/validation_properties.rs

tests/validation_properties.rs:
