/root/repo/target/debug/deps/pulse_math-81c6974a8f73291a.d: crates/math/src/lib.rs crates/math/src/cmp.rs crates/math/src/interval.rs crates/math/src/linsys.rs crates/math/src/poly.rs crates/math/src/roots.rs crates/math/src/sturm.rs

/root/repo/target/debug/deps/pulse_math-81c6974a8f73291a: crates/math/src/lib.rs crates/math/src/cmp.rs crates/math/src/interval.rs crates/math/src/linsys.rs crates/math/src/poly.rs crates/math/src/roots.rs crates/math/src/sturm.rs

crates/math/src/lib.rs:
crates/math/src/cmp.rs:
crates/math/src/interval.rs:
crates/math/src/linsys.rs:
crates/math/src/poly.rs:
crates/math/src/roots.rs:
crates/math/src/sturm.rs:
