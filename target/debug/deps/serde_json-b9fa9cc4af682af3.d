/root/repo/target/debug/deps/serde_json-b9fa9cc4af682af3.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-b9fa9cc4af682af3.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-b9fa9cc4af682af3.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
