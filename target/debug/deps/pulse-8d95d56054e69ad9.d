/root/repo/target/debug/deps/pulse-8d95d56054e69ad9.d: src/lib.rs

/root/repo/target/debug/deps/pulse-8d95d56054e69ad9: src/lib.rs

src/lib.rs:
