/root/repo/target/debug/deps/validation_properties-c5a0fcad5bbcc9a6.d: tests/validation_properties.rs

/root/repo/target/debug/deps/validation_properties-c5a0fcad5bbcc9a6: tests/validation_properties.rs

tests/validation_properties.rs:
