/root/repo/target/debug/deps/figures-a30941cfbeeca0c9.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-a30941cfbeeca0c9: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
