/root/repo/target/debug/deps/fig9_nyse-acb99ba584052586.d: crates/bench/src/bin/fig9_nyse.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_nyse-acb99ba584052586.rmeta: crates/bench/src/bin/fig9_nyse.rs Cargo.toml

crates/bench/src/bin/fig9_nyse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
