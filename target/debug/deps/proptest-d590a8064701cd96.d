/root/repo/target/debug/deps/proptest-d590a8064701cd96.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-d590a8064701cd96: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
