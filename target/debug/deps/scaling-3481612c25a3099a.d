/root/repo/target/debug/deps/scaling-3481612c25a3099a.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/scaling-3481612c25a3099a: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
