/root/repo/target/debug/deps/fig8_historical-8d1c7187fa0ae380.d: crates/bench/src/bin/fig8_historical.rs

/root/repo/target/debug/deps/fig8_historical-8d1c7187fa0ae380: crates/bench/src/bin/fig8_historical.rs

crates/bench/src/bin/fig8_historical.rs:
