/root/repo/target/debug/deps/pulse-5a60e13aabad0917.d: src/lib.rs

/root/repo/target/debug/deps/pulse-5a60e13aabad0917: src/lib.rs

src/lib.rs:
