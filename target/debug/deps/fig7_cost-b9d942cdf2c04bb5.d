/root/repo/target/debug/deps/fig7_cost-b9d942cdf2c04bb5.d: crates/bench/src/bin/fig7_cost.rs

/root/repo/target/debug/deps/fig7_cost-b9d942cdf2c04bb5: crates/bench/src/bin/fig7_cost.rs

crates/bench/src/bin/fig7_cost.rs:
