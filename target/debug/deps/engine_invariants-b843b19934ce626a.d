/root/repo/target/debug/deps/engine_invariants-b843b19934ce626a.d: tests/engine_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libengine_invariants-b843b19934ce626a.rmeta: tests/engine_invariants.rs Cargo.toml

tests/engine_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
