/root/repo/target/debug/deps/fig9_nyse-262d8c8b5f1456e5.d: crates/bench/src/bin/fig9_nyse.rs

/root/repo/target/debug/deps/fig9_nyse-262d8c8b5f1456e5: crates/bench/src/bin/fig9_nyse.rs

crates/bench/src/bin/fig9_nyse.rs:
