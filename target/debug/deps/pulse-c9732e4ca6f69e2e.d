/root/repo/target/debug/deps/pulse-c9732e4ca6f69e2e.d: src/bin/pulse.rs Cargo.toml

/root/repo/target/debug/deps/libpulse-c9732e4ca6f69e2e.rmeta: src/bin/pulse.rs Cargo.toml

src/bin/pulse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
