/root/repo/target/debug/deps/macd_pipeline-c7b07aaf2ad0cb12.d: tests/macd_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libmacd_pipeline-c7b07aaf2ad0cb12.rmeta: tests/macd_pipeline.rs Cargo.toml

tests/macd_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
