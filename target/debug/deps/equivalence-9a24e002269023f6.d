/root/repo/target/debug/deps/equivalence-9a24e002269023f6.d: tests/equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence-9a24e002269023f6.rmeta: tests/equivalence.rs Cargo.toml

tests/equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
