/root/repo/target/debug/deps/fig7_cost-d37282f2043aea62.d: crates/bench/src/bin/fig7_cost.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_cost-d37282f2043aea62.rmeta: crates/bench/src/bin/fig7_cost.rs Cargo.toml

crates/bench/src/bin/fig7_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
