/root/repo/target/debug/deps/pulse_sql-a0cc5e34325c3d86.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/compile.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs Cargo.toml

/root/repo/target/debug/deps/libpulse_sql-a0cc5e34325c3d86.rmeta: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/compile.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs Cargo.toml

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/compile.rs:
crates/sql/src/lexer.rs:
crates/sql/src/parser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
