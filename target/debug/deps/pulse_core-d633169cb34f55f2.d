/root/repo/target/debug/deps/pulse_core-d633169cb34f55f2.d: crates/core/src/lib.rs crates/core/src/binding.rs crates/core/src/cops/mod.rs crates/core/src/cops/group.rs crates/core/src/cops/join.rs crates/core/src/cops/minmax.rs crates/core/src/cops/sumavg.rs crates/core/src/eqsys.rs crates/core/src/historical.rs crates/core/src/index.rs crates/core/src/lineage.rs crates/core/src/plan.rs crates/core/src/runtime.rs crates/core/src/sampler.rs crates/core/src/shard.rs crates/core/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libpulse_core-d633169cb34f55f2.rmeta: crates/core/src/lib.rs crates/core/src/binding.rs crates/core/src/cops/mod.rs crates/core/src/cops/group.rs crates/core/src/cops/join.rs crates/core/src/cops/minmax.rs crates/core/src/cops/sumavg.rs crates/core/src/eqsys.rs crates/core/src/historical.rs crates/core/src/index.rs crates/core/src/lineage.rs crates/core/src/plan.rs crates/core/src/runtime.rs crates/core/src/sampler.rs crates/core/src/shard.rs crates/core/src/validate.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/binding.rs:
crates/core/src/cops/mod.rs:
crates/core/src/cops/group.rs:
crates/core/src/cops/join.rs:
crates/core/src/cops/minmax.rs:
crates/core/src/cops/sumavg.rs:
crates/core/src/eqsys.rs:
crates/core/src/historical.rs:
crates/core/src/index.rs:
crates/core/src/lineage.rs:
crates/core/src/plan.rs:
crates/core/src/runtime.rs:
crates/core/src/sampler.rs:
crates/core/src/shard.rs:
crates/core/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
