/root/repo/target/debug/deps/fig5_micro-25dbe45036bbc39b.d: crates/bench/src/bin/fig5_micro.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_micro-25dbe45036bbc39b.rmeta: crates/bench/src/bin/fig5_micro.rs Cargo.toml

crates/bench/src/bin/fig5_micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
