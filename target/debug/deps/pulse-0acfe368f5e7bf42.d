/root/repo/target/debug/deps/pulse-0acfe368f5e7bf42.d: src/lib.rs

/root/repo/target/debug/deps/libpulse-0acfe368f5e7bf42.rlib: src/lib.rs

/root/repo/target/debug/deps/libpulse-0acfe368f5e7bf42.rmeta: src/lib.rs

src/lib.rs:
