/root/repo/target/debug/deps/pulse_stream-4f8f449ede0db35a.d: crates/stream/src/lib.rs crates/stream/src/explain.rs crates/stream/src/logical.rs crates/stream/src/metrics.rs crates/stream/src/ops.rs crates/stream/src/parallel.rs crates/stream/src/plan.rs Cargo.toml

/root/repo/target/debug/deps/libpulse_stream-4f8f449ede0db35a.rmeta: crates/stream/src/lib.rs crates/stream/src/explain.rs crates/stream/src/logical.rs crates/stream/src/metrics.rs crates/stream/src/ops.rs crates/stream/src/parallel.rs crates/stream/src/plan.rs Cargo.toml

crates/stream/src/lib.rs:
crates/stream/src/explain.rs:
crates/stream/src/logical.rs:
crates/stream/src/metrics.rs:
crates/stream/src/ops.rs:
crates/stream/src/parallel.rs:
crates/stream/src/plan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
