/root/repo/target/debug/deps/pulse-c8c89eeb5e67588d.d: src/lib.rs

/root/repo/target/debug/deps/libpulse-c8c89eeb5e67588d.rlib: src/lib.rs

/root/repo/target/debug/deps/libpulse-c8c89eeb5e67588d.rmeta: src/lib.rs

src/lib.rs:
