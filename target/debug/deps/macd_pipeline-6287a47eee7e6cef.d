/root/repo/target/debug/deps/macd_pipeline-6287a47eee7e6cef.d: tests/macd_pipeline.rs

/root/repo/target/debug/deps/macd_pipeline-6287a47eee7e6cef: tests/macd_pipeline.rs

tests/macd_pipeline.rs:
