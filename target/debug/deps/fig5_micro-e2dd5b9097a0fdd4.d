/root/repo/target/debug/deps/fig5_micro-e2dd5b9097a0fdd4.d: crates/bench/src/bin/fig5_micro.rs

/root/repo/target/debug/deps/fig5_micro-e2dd5b9097a0fdd4: crates/bench/src/bin/fig5_micro.rs

crates/bench/src/bin/fig5_micro.rs:
