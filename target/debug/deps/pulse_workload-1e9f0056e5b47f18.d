/root/repo/target/debug/deps/pulse_workload-1e9f0056e5b47f18.d: crates/workload/src/lib.rs crates/workload/src/ais.rs crates/workload/src/moving.rs crates/workload/src/nyse.rs crates/workload/src/replay.rs Cargo.toml

/root/repo/target/debug/deps/libpulse_workload-1e9f0056e5b47f18.rmeta: crates/workload/src/lib.rs crates/workload/src/ais.rs crates/workload/src/moving.rs crates/workload/src/nyse.rs crates/workload/src/replay.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/ais.rs:
crates/workload/src/moving.rs:
crates/workload/src/nyse.rs:
crates/workload/src/replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
