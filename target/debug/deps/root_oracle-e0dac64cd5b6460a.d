/root/repo/target/debug/deps/root_oracle-e0dac64cd5b6460a.d: crates/math/tests/root_oracle.rs

/root/repo/target/debug/deps/root_oracle-e0dac64cd5b6460a: crates/math/tests/root_oracle.rs

crates/math/tests/root_oracle.rs:
