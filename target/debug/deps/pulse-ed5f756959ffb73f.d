/root/repo/target/debug/deps/pulse-ed5f756959ffb73f.d: src/bin/pulse.rs Cargo.toml

/root/repo/target/debug/deps/libpulse-ed5f756959ffb73f.rmeta: src/bin/pulse.rs Cargo.toml

src/bin/pulse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
