/root/repo/target/debug/deps/pulse_bench-a7b5b2b5b8c857b4.d: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/pulse_bench-a7b5b2b5b8c857b4: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
crates/bench/src/params.rs:
crates/bench/src/queries.rs:
crates/bench/src/report.rs:
