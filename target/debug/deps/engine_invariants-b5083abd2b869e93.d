/root/repo/target/debug/deps/engine_invariants-b5083abd2b869e93.d: tests/engine_invariants.rs

/root/repo/target/debug/deps/engine_invariants-b5083abd2b869e93: tests/engine_invariants.rs

tests/engine_invariants.rs:
