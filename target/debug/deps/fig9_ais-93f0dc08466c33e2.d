/root/repo/target/debug/deps/fig9_ais-93f0dc08466c33e2.d: crates/bench/src/bin/fig9_ais.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_ais-93f0dc08466c33e2.rmeta: crates/bench/src/bin/fig9_ais.rs Cargo.toml

crates/bench/src/bin/fig9_ais.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
