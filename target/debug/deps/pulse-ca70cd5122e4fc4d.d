/root/repo/target/debug/deps/pulse-ca70cd5122e4fc4d.d: src/bin/pulse.rs

/root/repo/target/debug/deps/pulse-ca70cd5122e4fc4d: src/bin/pulse.rs

src/bin/pulse.rs:
