/root/repo/target/debug/deps/pulse-e0b967fc5d8d6d66.d: src/bin/pulse.rs Cargo.toml

/root/repo/target/debug/deps/libpulse-e0b967fc5d8d6d66.rmeta: src/bin/pulse.rs Cargo.toml

src/bin/pulse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
