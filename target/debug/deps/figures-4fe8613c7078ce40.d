/root/repo/target/debug/deps/figures-4fe8613c7078ce40.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-4fe8613c7078ce40.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
