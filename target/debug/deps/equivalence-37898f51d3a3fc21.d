/root/repo/target/debug/deps/equivalence-37898f51d3a3fc21.d: tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-37898f51d3a3fc21: tests/equivalence.rs

tests/equivalence.rs:
