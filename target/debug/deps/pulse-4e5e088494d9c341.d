/root/repo/target/debug/deps/pulse-4e5e088494d9c341.d: src/bin/pulse.rs

/root/repo/target/debug/deps/pulse-4e5e088494d9c341: src/bin/pulse.rs

src/bin/pulse.rs:
