/root/repo/target/debug/deps/fig9_precision-3401deb9b4ec6c2d.d: crates/bench/src/bin/fig9_precision.rs

/root/repo/target/debug/deps/fig9_precision-3401deb9b4ec6c2d: crates/bench/src/bin/fig9_precision.rs

crates/bench/src/bin/fig9_precision.rs:
