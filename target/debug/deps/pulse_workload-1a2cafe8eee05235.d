/root/repo/target/debug/deps/pulse_workload-1a2cafe8eee05235.d: crates/workload/src/lib.rs crates/workload/src/ais.rs crates/workload/src/moving.rs crates/workload/src/nyse.rs crates/workload/src/replay.rs

/root/repo/target/debug/deps/libpulse_workload-1a2cafe8eee05235.rlib: crates/workload/src/lib.rs crates/workload/src/ais.rs crates/workload/src/moving.rs crates/workload/src/nyse.rs crates/workload/src/replay.rs

/root/repo/target/debug/deps/libpulse_workload-1a2cafe8eee05235.rmeta: crates/workload/src/lib.rs crates/workload/src/ais.rs crates/workload/src/moving.rs crates/workload/src/nyse.rs crates/workload/src/replay.rs

crates/workload/src/lib.rs:
crates/workload/src/ais.rs:
crates/workload/src/moving.rs:
crates/workload/src/nyse.rs:
crates/workload/src/replay.rs:
