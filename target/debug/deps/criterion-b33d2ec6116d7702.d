/root/repo/target/debug/deps/criterion-b33d2ec6116d7702.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-b33d2ec6116d7702: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
