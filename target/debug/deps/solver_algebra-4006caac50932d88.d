/root/repo/target/debug/deps/solver_algebra-4006caac50932d88.d: tests/solver_algebra.rs Cargo.toml

/root/repo/target/debug/deps/libsolver_algebra-4006caac50932d88.rmeta: tests/solver_algebra.rs Cargo.toml

tests/solver_algebra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
