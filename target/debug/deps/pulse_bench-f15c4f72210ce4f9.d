/root/repo/target/debug/deps/pulse_bench-f15c4f72210ce4f9.d: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/pulse_bench-f15c4f72210ce4f9: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
crates/bench/src/params.rs:
crates/bench/src/queries.rs:
crates/bench/src/report.rs:
