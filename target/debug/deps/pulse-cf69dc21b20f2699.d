/root/repo/target/debug/deps/pulse-cf69dc21b20f2699.d: src/bin/pulse.rs Cargo.toml

/root/repo/target/debug/deps/libpulse-cf69dc21b20f2699.rmeta: src/bin/pulse.rs Cargo.toml

src/bin/pulse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
