/root/repo/target/debug/deps/engine_invariants-733cc78ffe6d8d84.d: tests/engine_invariants.rs

/root/repo/target/debug/deps/engine_invariants-733cc78ffe6d8d84: tests/engine_invariants.rs

tests/engine_invariants.rs:
