/root/repo/target/debug/deps/figure1_scenario-7b4b856b75defdef.d: tests/figure1_scenario.rs Cargo.toml

/root/repo/target/debug/deps/libfigure1_scenario-7b4b856b75defdef.rmeta: tests/figure1_scenario.rs Cargo.toml

tests/figure1_scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
