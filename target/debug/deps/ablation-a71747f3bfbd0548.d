/root/repo/target/debug/deps/ablation-a71747f3bfbd0548.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-a71747f3bfbd0548.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
