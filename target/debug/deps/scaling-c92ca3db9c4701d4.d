/root/repo/target/debug/deps/scaling-c92ca3db9c4701d4.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/scaling-c92ca3db9c4701d4: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
