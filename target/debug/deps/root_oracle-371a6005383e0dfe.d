/root/repo/target/debug/deps/root_oracle-371a6005383e0dfe.d: crates/math/tests/root_oracle.rs Cargo.toml

/root/repo/target/debug/deps/libroot_oracle-371a6005383e0dfe.rmeta: crates/math/tests/root_oracle.rs Cargo.toml

crates/math/tests/root_oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
