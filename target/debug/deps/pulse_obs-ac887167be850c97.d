/root/repo/target/debug/deps/pulse_obs-ac887167be850c97.d: crates/obs/src/lib.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libpulse_obs-ac887167be850c97.rlib: crates/obs/src/lib.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libpulse_obs-ac887167be850c97.rmeta: crates/obs/src/lib.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/registry.rs:
crates/obs/src/snapshot.rs:
crates/obs/src/span.rs:
