/root/repo/target/debug/deps/pulse-bcb583e62e87f0eb.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpulse-bcb583e62e87f0eb.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
