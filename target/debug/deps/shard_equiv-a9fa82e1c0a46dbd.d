/root/repo/target/debug/deps/shard_equiv-a9fa82e1c0a46dbd.d: crates/core/tests/shard_equiv.rs

/root/repo/target/debug/deps/shard_equiv-a9fa82e1c0a46dbd: crates/core/tests/shard_equiv.rs

crates/core/tests/shard_equiv.rs:
