/root/repo/target/debug/deps/pulse_bench-55e03b5d87455bb1.d: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libpulse_bench-55e03b5d87455bb1.rlib: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libpulse_bench-55e03b5d87455bb1.rmeta: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
crates/bench/src/params.rs:
crates/bench/src/queries.rs:
crates/bench/src/report.rs:
