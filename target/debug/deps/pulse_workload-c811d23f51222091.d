/root/repo/target/debug/deps/pulse_workload-c811d23f51222091.d: crates/workload/src/lib.rs crates/workload/src/ais.rs crates/workload/src/moving.rs crates/workload/src/nyse.rs crates/workload/src/replay.rs Cargo.toml

/root/repo/target/debug/deps/libpulse_workload-c811d23f51222091.rmeta: crates/workload/src/lib.rs crates/workload/src/ais.rs crates/workload/src/moving.rs crates/workload/src/nyse.rs crates/workload/src/replay.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/ais.rs:
crates/workload/src/moving.rs:
crates/workload/src/nyse.rs:
crates/workload/src/replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
