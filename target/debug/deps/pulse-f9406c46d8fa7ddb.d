/root/repo/target/debug/deps/pulse-f9406c46d8fa7ddb.d: src/lib.rs

/root/repo/target/debug/deps/libpulse-f9406c46d8fa7ddb.rlib: src/lib.rs

/root/repo/target/debug/deps/libpulse-f9406c46d8fa7ddb.rmeta: src/lib.rs

src/lib.rs:
