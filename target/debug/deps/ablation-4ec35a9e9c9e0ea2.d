/root/repo/target/debug/deps/ablation-4ec35a9e9c9e0ea2.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-4ec35a9e9c9e0ea2: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
