/root/repo/target/debug/deps/fig9_ais-0dc009e0ca0a6686.d: crates/bench/src/bin/fig9_ais.rs

/root/repo/target/debug/deps/fig9_ais-0dc009e0ca0a6686: crates/bench/src/bin/fig9_ais.rs

crates/bench/src/bin/fig9_ais.rs:
