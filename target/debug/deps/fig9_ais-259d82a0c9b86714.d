/root/repo/target/debug/deps/fig9_ais-259d82a0c9b86714.d: crates/bench/src/bin/fig9_ais.rs

/root/repo/target/debug/deps/fig9_ais-259d82a0c9b86714: crates/bench/src/bin/fig9_ais.rs

crates/bench/src/bin/fig9_ais.rs:
