/root/repo/target/debug/deps/equivalence-e62f8b59cc3ded20.d: tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-e62f8b59cc3ded20: tests/equivalence.rs

tests/equivalence.rs:
