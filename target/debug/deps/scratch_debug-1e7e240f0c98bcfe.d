/root/repo/target/debug/deps/scratch_debug-1e7e240f0c98bcfe.d: tests/scratch_debug.rs

/root/repo/target/debug/deps/scratch_debug-1e7e240f0c98bcfe: tests/scratch_debug.rs

tests/scratch_debug.rs:
