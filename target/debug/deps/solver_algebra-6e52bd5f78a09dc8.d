/root/repo/target/debug/deps/solver_algebra-6e52bd5f78a09dc8.d: tests/solver_algebra.rs

/root/repo/target/debug/deps/solver_algebra-6e52bd5f78a09dc8: tests/solver_algebra.rs

tests/solver_algebra.rs:
