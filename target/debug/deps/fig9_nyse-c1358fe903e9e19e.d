/root/repo/target/debug/deps/fig9_nyse-c1358fe903e9e19e.d: crates/bench/src/bin/fig9_nyse.rs

/root/repo/target/debug/deps/fig9_nyse-c1358fe903e9e19e: crates/bench/src/bin/fig9_nyse.rs

crates/bench/src/bin/fig9_nyse.rs:
