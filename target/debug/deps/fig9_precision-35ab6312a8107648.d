/root/repo/target/debug/deps/fig9_precision-35ab6312a8107648.d: crates/bench/src/bin/fig9_precision.rs

/root/repo/target/debug/deps/fig9_precision-35ab6312a8107648: crates/bench/src/bin/fig9_precision.rs

crates/bench/src/bin/fig9_precision.rs:
