/root/repo/target/debug/deps/ablation-cd10c0b87838a2ab.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-cd10c0b87838a2ab.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
