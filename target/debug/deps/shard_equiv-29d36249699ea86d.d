/root/repo/target/debug/deps/shard_equiv-29d36249699ea86d.d: crates/core/tests/shard_equiv.rs Cargo.toml

/root/repo/target/debug/deps/libshard_equiv-29d36249699ea86d.rmeta: crates/core/tests/shard_equiv.rs Cargo.toml

crates/core/tests/shard_equiv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
