/root/repo/target/debug/deps/fig9_ais-56746710c8be88e7.d: crates/bench/src/bin/fig9_ais.rs

/root/repo/target/debug/deps/fig9_ais-56746710c8be88e7: crates/bench/src/bin/fig9_ais.rs

crates/bench/src/bin/fig9_ais.rs:
