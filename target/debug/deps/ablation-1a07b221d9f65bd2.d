/root/repo/target/debug/deps/ablation-1a07b221d9f65bd2.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-1a07b221d9f65bd2: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
