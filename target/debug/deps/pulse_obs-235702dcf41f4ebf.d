/root/repo/target/debug/deps/pulse_obs-235702dcf41f4ebf.d: crates/obs/src/lib.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libpulse_obs-235702dcf41f4ebf.rmeta: crates/obs/src/lib.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/span.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/registry.rs:
crates/obs/src/snapshot.rs:
crates/obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
