/root/repo/target/debug/deps/macd_pipeline-3e4280f6a7c6dd5b.d: tests/macd_pipeline.rs

/root/repo/target/debug/deps/macd_pipeline-3e4280f6a7c6dd5b: tests/macd_pipeline.rs

tests/macd_pipeline.rs:
