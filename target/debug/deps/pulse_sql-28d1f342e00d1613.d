/root/repo/target/debug/deps/pulse_sql-28d1f342e00d1613.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/compile.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs

/root/repo/target/debug/deps/libpulse_sql-28d1f342e00d1613.rlib: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/compile.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs

/root/repo/target/debug/deps/libpulse_sql-28d1f342e00d1613.rmeta: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/compile.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/compile.rs:
crates/sql/src/lexer.rs:
crates/sql/src/parser.rs:
