/root/repo/target/debug/deps/pulse_bench-d8f9a3fed79264e9.d: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libpulse_bench-d8f9a3fed79264e9.rmeta: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
crates/bench/src/params.rs:
crates/bench/src/queries.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
