/root/repo/target/debug/deps/figures-27a257e2aef88308.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-27a257e2aef88308.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
