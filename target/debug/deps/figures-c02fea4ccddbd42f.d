/root/repo/target/debug/deps/figures-c02fea4ccddbd42f.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-c02fea4ccddbd42f: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
