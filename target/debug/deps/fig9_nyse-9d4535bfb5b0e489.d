/root/repo/target/debug/deps/fig9_nyse-9d4535bfb5b0e489.d: crates/bench/src/bin/fig9_nyse.rs

/root/repo/target/debug/deps/fig9_nyse-9d4535bfb5b0e489: crates/bench/src/bin/fig9_nyse.rs

crates/bench/src/bin/fig9_nyse.rs:
