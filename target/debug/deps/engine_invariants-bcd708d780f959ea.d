/root/repo/target/debug/deps/engine_invariants-bcd708d780f959ea.d: tests/engine_invariants.rs

/root/repo/target/debug/deps/engine_invariants-bcd708d780f959ea: tests/engine_invariants.rs

tests/engine_invariants.rs:
