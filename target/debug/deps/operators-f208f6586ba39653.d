/root/repo/target/debug/deps/operators-f208f6586ba39653.d: crates/bench/benches/operators.rs Cargo.toml

/root/repo/target/debug/deps/liboperators-f208f6586ba39653.rmeta: crates/bench/benches/operators.rs Cargo.toml

crates/bench/benches/operators.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
