/root/repo/target/debug/deps/proptest-89dacc37d2f50878.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-89dacc37d2f50878.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-89dacc37d2f50878.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
