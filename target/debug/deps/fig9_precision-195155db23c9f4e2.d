/root/repo/target/debug/deps/fig9_precision-195155db23c9f4e2.d: crates/bench/src/bin/fig9_precision.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_precision-195155db23c9f4e2.rmeta: crates/bench/src/bin/fig9_precision.rs Cargo.toml

crates/bench/src/bin/fig9_precision.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
