/root/repo/target/debug/deps/serde_json-b31dab994a6726de.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-b31dab994a6726de: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
