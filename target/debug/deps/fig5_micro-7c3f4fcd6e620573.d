/root/repo/target/debug/deps/fig5_micro-7c3f4fcd6e620573.d: crates/bench/src/bin/fig5_micro.rs

/root/repo/target/debug/deps/fig5_micro-7c3f4fcd6e620573: crates/bench/src/bin/fig5_micro.rs

crates/bench/src/bin/fig5_micro.rs:
