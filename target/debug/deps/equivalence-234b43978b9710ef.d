/root/repo/target/debug/deps/equivalence-234b43978b9710ef.d: tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-234b43978b9710ef: tests/equivalence.rs

tests/equivalence.rs:
