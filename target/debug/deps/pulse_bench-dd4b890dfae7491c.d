/root/repo/target/debug/deps/pulse_bench-dd4b890dfae7491c.d: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/pulse_bench-dd4b890dfae7491c: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/params.rs crates/bench/src/queries.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
crates/bench/src/params.rs:
crates/bench/src/queries.rs:
crates/bench/src/report.rs:
