/root/repo/target/debug/deps/fig7_cost-dbfd6092215c7874.d: crates/bench/src/bin/fig7_cost.rs

/root/repo/target/debug/deps/fig7_cost-dbfd6092215c7874: crates/bench/src/bin/fig7_cost.rs

crates/bench/src/bin/fig7_cost.rs:
