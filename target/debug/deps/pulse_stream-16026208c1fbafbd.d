/root/repo/target/debug/deps/pulse_stream-16026208c1fbafbd.d: crates/stream/src/lib.rs crates/stream/src/explain.rs crates/stream/src/logical.rs crates/stream/src/metrics.rs crates/stream/src/ops.rs crates/stream/src/parallel.rs crates/stream/src/plan.rs

/root/repo/target/debug/deps/libpulse_stream-16026208c1fbafbd.rlib: crates/stream/src/lib.rs crates/stream/src/explain.rs crates/stream/src/logical.rs crates/stream/src/metrics.rs crates/stream/src/ops.rs crates/stream/src/parallel.rs crates/stream/src/plan.rs

/root/repo/target/debug/deps/libpulse_stream-16026208c1fbafbd.rmeta: crates/stream/src/lib.rs crates/stream/src/explain.rs crates/stream/src/logical.rs crates/stream/src/metrics.rs crates/stream/src/ops.rs crates/stream/src/parallel.rs crates/stream/src/plan.rs

crates/stream/src/lib.rs:
crates/stream/src/explain.rs:
crates/stream/src/logical.rs:
crates/stream/src/metrics.rs:
crates/stream/src/ops.rs:
crates/stream/src/parallel.rs:
crates/stream/src/plan.rs:
