/root/repo/target/debug/deps/operators-059a7af2bd986586.d: crates/bench/benches/operators.rs Cargo.toml

/root/repo/target/debug/deps/liboperators-059a7af2bd986586.rmeta: crates/bench/benches/operators.rs Cargo.toml

crates/bench/benches/operators.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
