/root/repo/target/debug/deps/pulse_workload-a799be231fe1fb55.d: crates/workload/src/lib.rs crates/workload/src/ais.rs crates/workload/src/moving.rs crates/workload/src/nyse.rs crates/workload/src/replay.rs

/root/repo/target/debug/deps/pulse_workload-a799be231fe1fb55: crates/workload/src/lib.rs crates/workload/src/ais.rs crates/workload/src/moving.rs crates/workload/src/nyse.rs crates/workload/src/replay.rs

crates/workload/src/lib.rs:
crates/workload/src/ais.rs:
crates/workload/src/moving.rs:
crates/workload/src/nyse.rs:
crates/workload/src/replay.rs:
