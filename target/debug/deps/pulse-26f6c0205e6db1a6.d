/root/repo/target/debug/deps/pulse-26f6c0205e6db1a6.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpulse-26f6c0205e6db1a6.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
