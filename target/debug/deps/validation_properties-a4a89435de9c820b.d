/root/repo/target/debug/deps/validation_properties-a4a89435de9c820b.d: tests/validation_properties.rs Cargo.toml

/root/repo/target/debug/deps/libvalidation_properties-a4a89435de9c820b.rmeta: tests/validation_properties.rs Cargo.toml

tests/validation_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
