/root/repo/target/debug/deps/figure1_scenario-c3991f811d0df951.d: tests/figure1_scenario.rs

/root/repo/target/debug/deps/figure1_scenario-c3991f811d0df951: tests/figure1_scenario.rs

tests/figure1_scenario.rs:
