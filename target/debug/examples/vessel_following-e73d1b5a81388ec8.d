/root/repo/target/debug/examples/vessel_following-e73d1b5a81388ec8.d: examples/vessel_following.rs

/root/repo/target/debug/examples/vessel_following-e73d1b5a81388ec8: examples/vessel_following.rs

examples/vessel_following.rs:
