/root/repo/target/debug/examples/predictive_dashboard-eee1a96d05ce6ed2.d: examples/predictive_dashboard.rs

/root/repo/target/debug/examples/predictive_dashboard-eee1a96d05ce6ed2: examples/predictive_dashboard.rs

examples/predictive_dashboard.rs:
