/root/repo/target/debug/examples/collision_detection-8bddafcabc434ad8.d: examples/collision_detection.rs

/root/repo/target/debug/examples/collision_detection-8bddafcabc434ad8: examples/collision_detection.rs

examples/collision_detection.rs:
