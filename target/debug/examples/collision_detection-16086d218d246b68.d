/root/repo/target/debug/examples/collision_detection-16086d218d246b68.d: examples/collision_detection.rs Cargo.toml

/root/repo/target/debug/examples/libcollision_detection-16086d218d246b68.rmeta: examples/collision_detection.rs Cargo.toml

examples/collision_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
