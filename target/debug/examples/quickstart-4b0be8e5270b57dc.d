/root/repo/target/debug/examples/quickstart-4b0be8e5270b57dc.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-4b0be8e5270b57dc.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
