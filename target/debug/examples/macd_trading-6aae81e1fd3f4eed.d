/root/repo/target/debug/examples/macd_trading-6aae81e1fd3f4eed.d: examples/macd_trading.rs

/root/repo/target/debug/examples/macd_trading-6aae81e1fd3f4eed: examples/macd_trading.rs

examples/macd_trading.rs:
