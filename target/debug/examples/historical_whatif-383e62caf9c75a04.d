/root/repo/target/debug/examples/historical_whatif-383e62caf9c75a04.d: examples/historical_whatif.rs

/root/repo/target/debug/examples/historical_whatif-383e62caf9c75a04: examples/historical_whatif.rs

examples/historical_whatif.rs:
