/root/repo/target/debug/examples/collision_detection-1f8444c01119b885.d: examples/collision_detection.rs

/root/repo/target/debug/examples/collision_detection-1f8444c01119b885: examples/collision_detection.rs

examples/collision_detection.rs:
