/root/repo/target/debug/examples/predictive_dashboard-c3890fc5c3accfa3.d: examples/predictive_dashboard.rs

/root/repo/target/debug/examples/predictive_dashboard-c3890fc5c3accfa3: examples/predictive_dashboard.rs

examples/predictive_dashboard.rs:
