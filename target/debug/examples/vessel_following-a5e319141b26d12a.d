/root/repo/target/debug/examples/vessel_following-a5e319141b26d12a.d: examples/vessel_following.rs

/root/repo/target/debug/examples/vessel_following-a5e319141b26d12a: examples/vessel_following.rs

examples/vessel_following.rs:
