/root/repo/target/debug/examples/vessel_following-8f486e7fc9b39a14.d: examples/vessel_following.rs Cargo.toml

/root/repo/target/debug/examples/libvessel_following-8f486e7fc9b39a14.rmeta: examples/vessel_following.rs Cargo.toml

examples/vessel_following.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
