/root/repo/target/debug/examples/macd_trading-a2706290b0de5e26.d: examples/macd_trading.rs Cargo.toml

/root/repo/target/debug/examples/libmacd_trading-a2706290b0de5e26.rmeta: examples/macd_trading.rs Cargo.toml

examples/macd_trading.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
