/root/repo/target/debug/examples/predictive_dashboard-75db1458e2ce2c2d.d: examples/predictive_dashboard.rs Cargo.toml

/root/repo/target/debug/examples/libpredictive_dashboard-75db1458e2ce2c2d.rmeta: examples/predictive_dashboard.rs Cargo.toml

examples/predictive_dashboard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
