/root/repo/target/debug/examples/sql_queries-93073efdbaa69a3c.d: examples/sql_queries.rs Cargo.toml

/root/repo/target/debug/examples/libsql_queries-93073efdbaa69a3c.rmeta: examples/sql_queries.rs Cargo.toml

examples/sql_queries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
