/root/repo/target/debug/examples/sql_queries-ef1beefedcb34604.d: examples/sql_queries.rs

/root/repo/target/debug/examples/sql_queries-ef1beefedcb34604: examples/sql_queries.rs

examples/sql_queries.rs:
