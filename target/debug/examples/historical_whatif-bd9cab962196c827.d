/root/repo/target/debug/examples/historical_whatif-bd9cab962196c827.d: examples/historical_whatif.rs Cargo.toml

/root/repo/target/debug/examples/libhistorical_whatif-bd9cab962196c827.rmeta: examples/historical_whatif.rs Cargo.toml

examples/historical_whatif.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
