/root/repo/target/debug/examples/quickstart-34e1bbf02e4ccda5.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-34e1bbf02e4ccda5: examples/quickstart.rs

examples/quickstart.rs:
