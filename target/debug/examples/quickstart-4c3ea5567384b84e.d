/root/repo/target/debug/examples/quickstart-4c3ea5567384b84e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4c3ea5567384b84e: examples/quickstart.rs

examples/quickstart.rs:
