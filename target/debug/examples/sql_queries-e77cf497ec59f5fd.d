/root/repo/target/debug/examples/sql_queries-e77cf497ec59f5fd.d: examples/sql_queries.rs

/root/repo/target/debug/examples/sql_queries-e77cf497ec59f5fd: examples/sql_queries.rs

examples/sql_queries.rs:
