/root/repo/target/debug/examples/obs_probe-d5f417551c5b5573.d: examples/obs_probe.rs

/root/repo/target/debug/examples/obs_probe-d5f417551c5b5573: examples/obs_probe.rs

examples/obs_probe.rs:
