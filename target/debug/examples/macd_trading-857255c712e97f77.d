/root/repo/target/debug/examples/macd_trading-857255c712e97f77.d: examples/macd_trading.rs

/root/repo/target/debug/examples/macd_trading-857255c712e97f77: examples/macd_trading.rs

examples/macd_trading.rs:
