/root/repo/target/debug/examples/historical_whatif-67b9448ead38e568.d: examples/historical_whatif.rs

/root/repo/target/debug/examples/historical_whatif-67b9448ead38e568: examples/historical_whatif.rs

examples/historical_whatif.rs:
