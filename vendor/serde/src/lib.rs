//! Offline stand-in for the `serde` crate.
//!
//! Real serde serializes through a visitor; this stand-in goes through an
//! intermediate [`Value`] tree instead, which is all the workspace needs
//! (derive on plain structs/enums + JSON export via `serde_json`). Field
//! order is preserved so emitted JSON matches declaration order.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A serialized value tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers (also carries deserialized negative JSON numbers).
    I64(i64),
    /// Unsigned integers (counters; emitted without a fractional part).
    U64(u64),
    F64(f64),
    String(String),
    Array(Vec<Value>),
    /// Key → value pairs in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::I64(i) => Some(*i as f64),
            Value::U64(u) => Some(*u as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(u) => Some(*u),
            Value::I64(i) if *i >= 0 => Some(*i as u64),
            Value::F64(f) if *f >= 0.0 && f.fract() == 0.0 => Some(*f as u64),
            _ => None,
        }
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Deserialization error: a human-readable path + expectation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::I64(i) => <$t>::try_from(*i).ok(),
                    Value::U64(u) => <$t>::try_from(*u).ok(),
                    Value::F64(f) if f.fract() == 0.0 => Some(*f as $t),
                    _ => None,
                }
                .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut pairs: Vec<_> = self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(String::from_value(&"hi".to_string().to_value()), Ok("hi".into()));
        assert_eq!(Option::<u64>::from_value(&Value::Null), Ok(None));
        assert_eq!(Vec::<u64>::from_value(&vec![1u64, 2].to_value()), Ok(vec![1, 2]));
    }

    #[test]
    fn object_get() {
        let v = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert!(v.get("b").is_none());
    }
}
