//! Offline stand-in for `criterion`.
//!
//! Mirrors the criterion API surface the workspace benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!` / `criterion_main!`) over a plain wall-clock timer:
//! each benchmark warms up briefly, then times `sample_size` batches and
//! prints min/median ns-per-iteration. No statistics beyond that — the
//! goal is comparable relative numbers in an offline container.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// Timer handed to the closure under test.
pub struct Bencher {
    /// Nanoseconds per iteration for each measured batch.
    samples: Vec<f64>,
    sample_count: usize,
}

impl Bencher {
    /// Runs `routine` in timed batches; the batch size is auto-scaled so a
    /// batch takes roughly 10ms (bounded to keep total time sane).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up & batch-size calibration.
        let mut iters_per_batch = 1u64;
        let calibration_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(5) || iters_per_batch >= 1 << 20 {
                break;
            }
            if calibration_start.elapsed() > Duration::from_millis(200) {
                break;
            }
            iters_per_batch *= 2;
        }
        // Measurement.
        self.samples.clear();
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / iters_per_batch as f64;
            self.samples.push(ns);
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed batches per benchmark (criterion's `sample_size`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new(), sample_count: self.sample_size };
        f(&mut b);
        report(&self.name, &id.0, &b.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new(), sample_count: self.sample_size };
        f(&mut b, input);
        report(&self.name, &id.0, &b.samples);
        self
    }

    pub fn finish(&mut self) {}
}

/// Accepts both `&str` names and [`BenchmarkId`]s.
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> Self {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId(id.name)
    }
}

fn report(group: &str, bench: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{group}/{bench}: no samples");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    println!(
        "{group}/{bench}: median {} min {} ({} samples)",
        fmt_ns(median),
        fmt_ns(min),
        samples.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Benchmark driver (configuration container).
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { name: name.into(), sample_size, _parent: self }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::new(), sample_count: self.default_sample_size };
        f(&mut b);
        report("bench", name, &b.samples);
        self
    }

    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut ran = 0;
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        g.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| b.iter(|| black_box(x) * 2));
        ran += 1;
        g.finish();
        assert_eq!(ran, 1);
    }
}
