//! Offline stand-in for `serde_json`: renders the [`serde::Value`] tree to
//! JSON text (compact and pretty) and parses JSON back into values.

pub use serde::{Error, Value};

/// Serializes to compact JSON.
pub fn to_string<T: ?Sized + serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: ?Sized + serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: ?Sized + serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Parses JSON text into a typed value.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{}` on f64 is shortest round-trip; force a decimal point
                // so integral floats stay floats on re-parse.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            write_seq(out, indent, level, '[', ']', items.iter(), |out, item, ind, lvl| {
                write_value(out, item, ind, lvl)
            })
        }
        Value::Object(pairs) => {
            write_seq(out, indent, level, '{', '}', pairs.iter(), |out, (k, v), ind, lvl| {
                write_json_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, v, ind, lvl);
            })
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (level + 1)));
        }
        write_item(out, item, indent, level + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * level));
        }
    }
    out.push(close);
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses one JSON document (trailing whitespace allowed).
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b" \t\r\n".contains(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!("expected {:?} at byte {}", b as char, self.pos)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::custom(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    pairs.push((key, self.value()?));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.bytes.get(self.pos) else {
                        return Err(Error::custom("dangling escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape \\{}", other as char)))
                        }
                    }
                }
                // Multi-byte UTF-8: copy the raw bytes through.
                b => {
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => 1,
                    };
                    self.pos = start + len;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| Error::custom("invalid utf8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Array(vec![Value::F64(1.5), Value::Null])),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[1.5,null]}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1,"), "{pretty}");
    }

    #[test]
    fn parse_roundtrip() {
        let src = r#"{"name":"hist\n","counts":[1,2,3],"mean":-0.25,"on":true,"none":null}"#;
        let v = parse_value(src).unwrap();
        assert_eq!(v.get("counts").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("mean").unwrap().as_f64(), Some(-0.25));
        assert_eq!(v.get("name").unwrap().as_str(), Some("hist\n"));
        let round = parse_value(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, round);
    }

    #[test]
    fn integral_floats_keep_point() {
        assert_eq!(to_string(&Value::F64(3.0)).unwrap(), "3.0");
        assert_eq!(to_string(&Value::U64(3)).unwrap(), "3");
    }
}
