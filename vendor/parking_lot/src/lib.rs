//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal API-compatible subset over `std::sync`. Semantics match what the
//! repo relies on: `lock()` returns a guard directly (poisoning is absorbed
//! rather than surfaced, like real parking_lot which has no poisoning).

use std::ops::{Deref, DerefMut};

/// A mutex whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|p| p.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock whose methods never return a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|p| p.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|p| p.into_inner()))
    }
}

/// RAII read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
