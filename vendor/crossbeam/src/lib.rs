//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is provided: bounded (backpressure) and
//! unbounded channels with cloneable senders *and* receivers, which is the
//! surface the pipelined discrete engine uses. Receivers share one
//! underlying `std::sync::mpsc` consumer behind a mutex; the repo's usage
//! is single-consumer per node, so contention is nil.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned when the receiving side disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when all senders disconnected and the queue drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    enum Tx<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
            }
        }
    }

    /// Sending half of a channel.
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks while a bounded channel is full (backpressure).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Tx::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half of a channel; cloneable (clones share the queue).
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.0.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv().map_err(|_| RecvError)
        }

        /// Drains whatever is currently queued without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || {
                let guard = self.0.lock().unwrap_or_else(|p| p.into_inner());
                guard.try_recv().ok()
            })
        }
    }

    /// Channel with capacity `cap`; sends block when full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap.max(1));
        (Sender(Tx::Bounded(tx)), Receiver(Arc::new(Mutex::new(rx))))
    }

    /// Channel without a capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(Arc::new(Mutex::new(rx))))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.clone().send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn bounded_backpressure_across_threads() {
        let (tx, rx) = channel::bounded(1);
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
