//! Offline stand-in for the `rand` crate.
//!
//! The workload generators only need a deterministic, seedable uniform
//! source: `StdRng::seed_from_u64` plus `Rng::gen_range` over float and
//! integer ranges. The generator is xoshiro256** seeded via SplitMix64 —
//! not the real StdRng's ChaCha12, but the repo's generators promise
//! determinism per seed, not a specific stream.

use std::ops::{Range, RangeInclusive};

/// Seedable random sources.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling over a range type.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore + Sized {
    /// Uniform value in `range`. Panics on an empty range, like real rand.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, the
            // initialization xoshiro's authors recommend.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(1..=10);
            assert!((1..=10).contains(&i));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
