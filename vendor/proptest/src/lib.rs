//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! strategies (ranges, tuples, `Just`, `prop_map`, unions, collections),
//! the `proptest!` / `prop_compose!` / `prop_oneof!` macros, and the
//! `prop_assert*` family. Cases are generated from a deterministic
//! per-test RNG — same seeds every run — and there is no shrinking:
//! a failure reports the case index and message and panics.

use std::fmt;

/// Deterministic generator (splitmix64 core) handed to strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5DEECE66D_u64 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in [lo, hi] (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + (self.next_u64() % (hi - lo + 1) as u64) as usize
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// A property assertion failed.
    Fail(String),
    /// The inputs were rejected (`prop_assume!`); the case is skipped.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Value generator. The workspace only samples (no shrinking), so a
/// strategy is just a deterministic `TestRng -> Value` function.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        strategy::Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.next_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % width) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

pub mod strategy {
    use super::{Strategy, TestRng};

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// `prop_oneof!` backing type: picks one branch uniformly.
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.usize_in(0, self.options.len() - 1);
            self.options[i].sample(rng)
        }
    }

    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }
}

/// `prop::collection` etc., mirroring proptest's module layout.
pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Element count for [`vec`]; inclusive bounds.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange { lo: r.start, hi: r.end - 1 }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange { lo: *r.start(), hi: *r.end() }
            }
        }

        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.usize_in(self.size.lo, self.size.hi);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Number of cases per property (overridable via `PROPTEST_CASES`).
fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(48)
}

fn name_seed(name: &str) -> u64 {
    // FNV-1a, so every property gets its own deterministic stream.
    name.bytes().fold(0xcbf29ce484222325_u64, |h, b| (h ^ b as u64).wrapping_mul(0x100000001b3))
}

/// Test-runner entry used by the `proptest!` expansion.
pub fn run_cases(name: &str, mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
    let base = name_seed(name);
    let total = case_count();
    let mut rejected = 0u64;
    for i in 0..total {
        let mut rng = TestRng::new(base.wrapping_add(i.wrapping_mul(0x9E3779B97F4A7C15)));
        match case(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case {i}/{total}: {msg}");
            }
        }
    }
    assert!(rejected < total, "property `{name}`: every case was rejected by prop_assume!");
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |prop_rng| {
                    $(let $pat = $crate::Strategy::sample(&($strat), prop_rng);)+
                    let out: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    out
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($arg:ident : $argty:ty),* $(,)?)
        ($($pat:pat in $strat:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::Strategy::prop_map(
                ($($strat,)+),
                move |($($pat,)+)| $body,
            )
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} — {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{:?} != {:?} ({} vs {})", l, r, stringify!($left), stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{:?} != {:?} — {}", l, r, format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, prop_compose, prop_oneof, proptest,
        strategy, Just, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(0.0..1.0_f64, 1..=4)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -2.0..3.0_f64, n in 1..10usize) {
            prop_assert!((-2.0..3.0).contains(&x), "x={}", x);
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_size(v in small_vec()) {
            prop_assert!(!v.is_empty() && v.len() <= 4);
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn oneof_and_just(k in prop_oneof![Just(1u32), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&k));
            prop_assume!(k != 2);
            prop_assert_eq!(k % 2, 1);
        }
    }

    prop_compose! {
        fn offset_pairs(base: f64)(
            a in 0.0..1.0_f64,
            b in 0.0..1.0_f64,
        ) -> (f64, f64) {
            (base + a, base + b)
        }
    }

    proptest! {
        #[test]
        fn composed_strategy_applies_args(p in offset_pairs(10.0)) {
            prop_assert!(p.0 >= 10.0 && p.0 < 11.0);
            prop_assert!(p.1 >= 10.0 && p.1 < 11.0);
        }
    }

    #[test]
    fn determinism() {
        let s = 0.0..1.0_f64;
        let a: Vec<f64> = {
            let mut rng = TestRng::new(7);
            (0..5).map(|_| s.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = TestRng::new(7);
            (0..5).map(|_| s.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
