//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` using only
//! the built-in `proc_macro` API (no syn/quote — the build is offline).
//! Supported shapes are exactly what the workspace derives on: non-generic
//! structs with named fields, and enums whose variants are all unit-like.
//! Anything else produces a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    /// Unit variant names, in declaration order.
    Enum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Parses the derive input. Returns `Err(reason)` on unsupported shapes.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut toks = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                // pub(crate) etc: a parenthesized group follows.
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    let body = loop {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!("derive on generic type {name} is not supported"));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!("tuple struct {name} is not supported"));
            }
            Some(_) => continue,
            None => return Err(format!("no body found for {name}")),
        }
    };
    match kind.as_str() {
        "struct" => Ok(Item { name, shape: Shape::Struct(parse_named_fields(body.stream())?) }),
        "enum" => Ok(Item { name, shape: Shape::Enum(parse_unit_variants(body.stream())?) }),
        other => Err(format!("cannot derive for {other} {name}")),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip field attributes and visibility.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(field) = tok else {
            return Err(format!("expected field name, got {tok:?}"));
        };
        fields.push(field.to_string());
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field, got {other:?}")),
        }
        // Skip the type: consume until a top-level comma. Angle brackets
        // arrive as plain puncts, so track their depth by hand.
        let mut depth = 0i32;
        loop {
            match toks.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => break,
                Some(_) => {}
                None => break,
            }
        }
    }
    Ok(fields)
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                _ => break,
            }
        }
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(variant) = tok else {
            return Err(format!("expected variant name, got {tok:?}"));
        };
        variants.push(variant.to_string());
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "variant {variant} carries data; only unit variants are supported"
                ));
            }
            other => return Err(format!("unexpected token after variant: {other:?}")),
        }
    }
    Ok(variants)
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!("serde::Value::Object(vec![{pushes}])")
        }
        Shape::Enum(variants) => {
            let arms: String = variants.iter().map(|v| format!("{name}::{v} => {v:?},")).collect();
            format!("serde::Value::String((match self {{ {arms} }}).to_string())")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
            fn to_value(&self) -> serde::Value {{ {body} }}\n\
        }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(v.get({f:?}).unwrap_or(&serde::Value::Null))\
                         .map_err(|e| serde::Error::custom(format!(\"{name}.{f}: {{}}\", e.0)))?,"
                    )
                })
                .collect();
            format!("Ok({name} {{ {inits} }})")
        }
        Shape::Enum(variants) => {
            let arms: String =
                variants.iter().map(|v| format!("Some({v:?}) => Ok({name}::{v}),")).collect();
            format!(
                "match v.as_str() {{ {arms} other => Err(serde::Error::custom(\
                 format!(\"unknown {name} variant {{:?}}\", other))) }}"
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
            fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{ {body} }}\n\
        }}"
    )
    .parse()
    .unwrap()
}
