//! Offline stand-in for the `bytes` crate.
//!
//! Provides the little-endian framing subset the segment archive format
//! uses: `BytesMut` + `BufMut` for encoding, `Buf` over `&[u8]` for
//! decoding, and an immutable `Bytes` handle. Reads past the end panic,
//! matching real `bytes` semantics (callers check `remaining()` first).

use std::ops::Deref;

/// Immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    pub fn from_vec(v: Vec<u8>) -> Self {
        Bytes(v)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.0
    }
}

/// Growable byte buffer used while encoding.
#[derive(Debug, Clone, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Write-side trait: append fixed-width little-endian values.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side trait: consume fixed-width little-endian values from the front.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"HDR!");
        buf.put_u16_le(7);
        buf.put_u64_le(1 << 40);
        buf.put_f64_le(-2.5);
        let frozen = buf.freeze();
        let mut data: &[u8] = &frozen;
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"HDR!");
        assert_eq!(data.get_u16_le(), 7);
        assert_eq!(data.get_u64_le(), 1 << 40);
        assert_eq!(data.get_f64_le(), -2.5);
        assert_eq!(data.remaining(), 0);
    }
}
