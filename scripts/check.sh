#!/usr/bin/env bash
# Repo health gate: formatting, lints, the full test suite, the bounded
# differential-fuzz stage, a live /metrics + /health + /profile scrape of
# a 4-shard scaling run, and the observability overhead gates (obs_bench
# min-of-batches deltas for metrics, profiler-on suppressed path, and the
# profiler's violation-path percentage; the criterion bench `cargo bench
# -p pulse-bench --bench obs_overhead` gives distributions for humans on
# a quiet machine).
#
# `./scripts/check.sh soak` raises the differential-fuzz budget to 1024
# generated cases; PULSE_QA_CASES overrides either default explicitly.
set -euo pipefail
cd "$(dirname "$0")/.."

qa_cases="${PULSE_QA_CASES:-64}"
[[ "${1:-}" == "soak" ]] && qa_cases="${PULSE_QA_CASES:-1024}"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test --workspace -q (differential suite at its default budget)"
cargo test --workspace -q

echo "== differential fuzz: $qa_cases generated cases + unconditional corpus replay"
PULSE_QA_CASES="$qa_cases" cargo test -p pulse-qa -q

echo "== cargo build --release --bins --benches"
cargo build --release --workspace --bins --benches

echo "== scaling smoke (4-shard sweep) with live /metrics + /health + /profile scrape"
PULSE_SCALING_SMOKE=1 PULSE_SCALING_SHARDS=4 \
PULSE_SERVE_ADDR=127.0.0.1:9187 PULSE_SERVE_LINGER=6 \
  ./target/release/scaling &
scaling_pid=$!
metrics="" health="" profile=""
for _ in $(seq 1 60); do
  metrics=$(curl -sf --max-time 2 http://127.0.0.1:9187/metrics || true)
  # No -f: /health legitimately answers 503 while shards are saturated,
  # and a degraded verdict is still a healthy serving surface.
  health=$(curl -s --max-time 2 http://127.0.0.1:9187/health || true)
  profile=$(curl -sf --max-time 2 http://127.0.0.1:9187/profile || true)
  [[ "$metrics" == *'pulse_runtime_tuples_in{shard="'* \
     && "$health" == *'"verdict"'* \
     && "$profile" == *'"phases"'* ]] && break
  sleep 0.25
done
wait "$scaling_pid"
if [[ "$metrics" != *'pulse_runtime_tuples_in{shard="'* ]]; then
  echo "FAIL: live /metrics scrape returned no per-shard labelled series" >&2
  exit 1
fi
if [[ "$health" != *'"verdict"'* ]]; then
  echo "FAIL: live /health scrape returned no verdict" >&2
  exit 1
fi
if [[ "$profile" != *'"phases"'* ]]; then
  echo "FAIL: live /profile scrape returned no phase breakdown" >&2
  exit 1
fi
echo "live /metrics + /health + /profile scrape OK"

echo "== observability overhead gates (suppressed fast path + profiler postures)"
PULSE_OBS_GATE=1 ./target/release/obs_bench

echo "All checks passed."
