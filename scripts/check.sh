#!/usr/bin/env bash
# Repo health gate: formatting, lints, and the full test suite.
# Run before every commit; CI mirrors these steps.
#
# The observability overhead gate (suppressed fast path within 5% with
# telemetry on) is measured separately — it needs a quiet machine:
#   cargo bench -p pulse-bench --bench obs_overhead
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test --workspace -q"
cargo test --workspace -q

echo "== cargo build --release --bins --benches"
cargo build --release --workspace --bins --benches

echo "== scaling smoke (2-shard sweep)"
PULSE_SCALING_SMOKE=1 PULSE_SCALING_SHARDS=2 ./target/release/scaling

echo "All checks passed."
