#!/usr/bin/env bash
# Repo health gate: formatting, lints, the full test suite, the bounded
# differential-fuzz stage, a live /metrics scrape of a 4-shard scaling
# run, and the observability overhead gate (obs_bench min-of-batches
# delta; the criterion bench `cargo bench -p pulse-bench --bench
# obs_overhead` gives distributions for humans on a quiet machine).
#
# `./scripts/check.sh soak` raises the differential-fuzz budget to 1024
# generated cases; PULSE_QA_CASES overrides either default explicitly.
set -euo pipefail
cd "$(dirname "$0")/.."

qa_cases="${PULSE_QA_CASES:-64}"
[[ "${1:-}" == "soak" ]] && qa_cases="${PULSE_QA_CASES:-1024}"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test --workspace -q (differential suite at its default budget)"
cargo test --workspace -q

echo "== differential fuzz: $qa_cases generated cases + unconditional corpus replay"
PULSE_QA_CASES="$qa_cases" cargo test -p pulse-qa -q

echo "== cargo build --release --bins --benches"
cargo build --release --workspace --bins --benches

echo "== scaling smoke (4-shard sweep) with live /metrics scrape"
PULSE_SCALING_SMOKE=1 PULSE_SCALING_SHARDS=4 \
PULSE_SERVE_ADDR=127.0.0.1:9187 PULSE_SERVE_LINGER=6 \
  ./target/release/scaling &
scaling_pid=$!
metrics=""
for _ in $(seq 1 60); do
  metrics=$(curl -sf --max-time 2 http://127.0.0.1:9187/metrics || true)
  [[ "$metrics" == *'pulse_runtime_tuples_in{shard="'* ]] && break
  sleep 0.25
done
wait "$scaling_pid"
if [[ "$metrics" != *'pulse_runtime_tuples_in{shard="'* ]]; then
  echo "FAIL: live /metrics scrape returned no per-shard labelled series" >&2
  exit 1
fi
echo "live /metrics scrape OK (per-shard labelled series present)"

echo "== observability overhead gate (suppressed fast path)"
PULSE_OBS_GATE=1 ./target/release/obs_bench

echo "All checks passed."
