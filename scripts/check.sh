#!/usr/bin/env bash
# Repo health gate: formatting, lints, the full test suite, the bounded
# differential-fuzz stage, the optimizer-equivalence fuzz stage (every
# case runs the oracle with and without the standard pass pipeline and
# the discrete traces must match bit-for-bit, with per-pass fire
# coverage asserted), a live scrape of a 4-shard scaling run
# (/metrics, /health, /profile, the /timeseries collector history, the
# /audit guarantee ledger, and the /trace.json Perfetto export), the
# observability overhead gates (obs_bench min-of-batches deltas for
# metrics, profiler-on suppressed path, the profiler's violation-path
# percentage, and the guarantee auditor's suppressed-path and
# violation-path costs; the criterion bench `cargo bench -p pulse-bench
# --bench obs_overhead` gives distributions for humans on a quiet
# machine), and the bench_diff regression gate comparing both result
# files against the checked-in baselines in scripts/baselines/ (band
# ±PULSE_BENCH_BAND_PCT%, default 50).
#
# `./scripts/check.sh soak` raises the differential-fuzz budget to 1024
# generated cases; PULSE_QA_CASES overrides either default explicitly.
set -euo pipefail
cd "$(dirname "$0")/.."

qa_cases="${PULSE_QA_CASES:-64}"
[[ "${1:-}" == "soak" ]] && qa_cases="${PULSE_QA_CASES:-1024}"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test --workspace -q (differential suite at its default budget)"
cargo test --workspace -q

echo "== differential fuzz: $qa_cases generated cases + unconditional corpus replay"
PULSE_QA_CASES="$qa_cases" cargo test -p pulse-qa -q

echo "== optimizer-equivalence fuzz: $qa_cases opt-biased cases (every pass must fire)"
PULSE_QA_CASES="$qa_cases" cargo test -p pulse-qa --test opt_equiv -q

echo "== cargo build --release --bins --benches"
cargo build --release --workspace --bins --benches

echo "== scaling smoke (4-shard sweep) with live scrape of the full serving surface"
# The curl loop below steals CPU from the sweep it is scraping, so this
# run validates the serving surface, not timings (coverage floor relaxed;
# the bench_diff gate run further down is quiet and rep-median'd).
PULSE_SCALING_SMOKE=1 PULSE_SCALING_SHARDS=4 PULSE_SCALING_COVERAGE_FLOOR=0.75 \
PULSE_SERVE_ADDR=127.0.0.1:9187 PULSE_SERVE_LINGER=6 \
  ./target/release/scaling &
scaling_pid=$!
metrics="" health="" profile="" timeseries="" trace="" audit="" audited=""
for _ in $(seq 1 60); do
  metrics=$(curl -sf --max-time 2 http://127.0.0.1:9187/metrics || true)
  # No -f: /health legitimately answers 503 while shards are saturated,
  # and a degraded verdict is still a healthy serving surface.
  health=$(curl -s --max-time 2 http://127.0.0.1:9187/health || true)
  profile=$(curl -sf --max-time 2 http://127.0.0.1:9187/profile || true)
  # The guarantee auditor shadow-compares 1-in-64 symbols; the merged
  # per-key ledger must be non-empty (and clean) on a live sweep.
  audit=$(curl -s --max-time 2 http://127.0.0.1:9187/audit || true)
  # `|| true`: grep exits 1 before the route is serving, which would trip
  # set -e inside the assignment.
  audited=$(grep -o '"audited_keys":[0-9]*' <<<"$audit" | head -1 | cut -d: -f2 || true)
  # The collector ticks every 2.5k tuples, so by the time the sweep's
  # phases have run the violations family has a dense history. (Reading
  # the ring store is cheap; /trace.json is NOT polled here because a
  # live render stops every shard to copy its ring — one scrape after
  # the loop is enough and keeps the smoke timings honest.)
  timeseries=$(curl -sf --max-time 2 \
    'http://127.0.0.1:9187/timeseries?metric=runtime.violations' || true)
  samples=$(sed -n 's/.*"samples":\([0-9]*\).*/\1/p' <<<"$timeseries")
  [[ "$metrics" == *'pulse_runtime_tuples_in{shard="'* \
     && "$health" == *'"verdict"'* \
     && "$profile" == *'"phases"'* \
     && "${audited:-0}" -ge 1 \
     && "${samples:-0}" -ge 10 ]] && break
  sleep 0.25
done
# One trace scrape: served live while a sharded phase runs, and from the
# cached final snapshot of the last completed phase afterwards.
trace=$(curl -sf --max-time 5 http://127.0.0.1:9187/trace.json || true)
wait "$scaling_pid"
if [[ "$metrics" != *'pulse_runtime_tuples_in{shard="'* ]]; then
  echo "FAIL: live /metrics scrape returned no per-shard labelled series" >&2
  exit 1
fi
if [[ "$health" != *'"verdict"'* ]]; then
  echo "FAIL: live /health scrape returned no verdict" >&2
  exit 1
fi
if [[ "$profile" != *'"phases"'* ]]; then
  echo "FAIL: live /profile scrape returned no phase breakdown" >&2
  exit 1
fi
if [[ -z "$samples" || "$samples" -lt 10 ]]; then
  echo "FAIL: /timeseries served ${samples:-0} runtime.violations samples (need >= 10)" >&2
  exit 1
fi
if [[ "$trace" != *'"traceEvents"'* ]]; then
  echo "FAIL: /trace.json scrape returned no Chrome trace" >&2
  exit 1
fi
if [[ -z "$audited" || "$audited" -lt 1 ]]; then
  echo "FAIL: live /audit scrape reported no audited keys" >&2
  exit 1
fi
breaches=$(grep -o '"breaches":[0-9]*' <<<"$audit" | head -1 | cut -d: -f2 || true)
if [[ "${breaches:-1}" -ne 0 ]]; then
  echo "FAIL: live /audit reported $breaches guarantee breaches on a clean run" >&2
  echo "$audit" >&2
  exit 1
fi
echo "live /metrics + /health + /profile + /timeseries ($samples samples) + /audit ($audited keys, 0 breaches) + /trace.json scrape OK"

echo "== bench-diff: scaling-smoke trajectory vs checked-in baseline (3-rep median, quiet)"
PULSE_SCALING_SMOKE=1 PULSE_SCALING_SHARDS=4 PULSE_SCALING_REPS=3 \
  ./target/release/scaling
# The scaling band is tighter than the obs one (±30% vs ±50%): the smoke
# rows are rep-medians of multi-second runs, far less jittery than the
# few-ns obs deltas, and the batched+VM violation path this PR landed
# should not quietly give its win back. PULSE_BENCH_BAND_PCT still
# overrides both gates.
PULSE_BENCH_BAND_PCT="${PULSE_BENCH_BAND_PCT:-30}" \
  ./target/release/bench_diff check scaling target/BENCH_scaling_smoke.json

echo "== observability overhead gates (suppressed fast path + profiler postures)"
# PULSE_OBS_OUT keeps the gate run from clobbering the tracked repo-root
# BENCH_obs.json (that file is regenerated deliberately, on quiet runs).
PULSE_OBS_GATE=1 PULSE_OBS_OUT=target/BENCH_obs_fresh.json ./target/release/obs_bench

echo "== bench-diff: obs-overhead trajectory vs checked-in baseline"
./target/release/bench_diff check obs target/BENCH_obs_fresh.json

echo "All checks passed."
