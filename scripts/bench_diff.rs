//! Noise-aware benchmark regression gate.
//!
//! Compares a fresh benchmark result against the checked-in baseline in
//! `scripts/baselines/` and fails when any tracked metric regresses
//! beyond the noise band. Compiled as the `bench_diff` bin of
//! `pulse-bench`; `scripts/check.sh` runs it after the scaling smoke and
//! the obs-overhead gate.
//!
//! Usage:
//!
//! ```text
//! bench_diff check  <kind> <fresh.json> [baseline.json]
//! bench_diff record <kind> <fresh.json> [baseline.json]
//! ```
//!
//! `kind` selects the schema and default baseline:
//!
//! - `obs` — `BENCH_obs.json` shape: `postures` / `violation_postures`
//!   entries keyed by `config`, metric `ns_per_tuple`. Baseline
//!   `scripts/baselines/BENCH_obs.json`.
//! - `scaling` — scaling-sweep `Report` shape: `rows` keyed by
//!   `mode` + `shards`, metric `ns_per_tuple`. Baseline
//!   `scripts/baselines/BENCH_scaling_smoke.json` (the smoke workload is
//!   what CI reruns; the full sweep tracks `BENCH_scaling.json` at the
//!   repo root for humans).
//!
//! Noise handling is two-layered: the bench binaries already report
//! noise-resistant statistics (min over hundreds of batches for the
//! suppressed path, medians over interleaved reps for the violation
//! pair), and this gate adds a relative band — a metric fails only above
//! `baseline × (1 + band)`, with `PULSE_BENCH_BAND_PCT` (default 50)
//! controlling the band. Improvements beyond the band are called out as
//! re-record candidates but never fail. Workload-parameter drift
//! (different tuple counts, reps) fails loudly: numbers from different
//! workloads must not be compared, re-record instead.
//!
//! A missing baseline is seeded from the fresh result and the check
//! passes — the first run on a new machine or branch bootstraps itself.

use serde::Value;
use std::collections::BTreeMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: bench_diff <check|record> <obs|scaling> <fresh.json> [baseline.json]");
    exit(2);
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn load(path: &str) -> Value {
    let raw = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_diff: cannot read {path}: {e}");
        exit(2);
    });
    serde_json::parse_value(&raw).unwrap_or_else(|e| {
        eprintln!("bench_diff: {path} is not valid JSON: {e}");
        exit(2);
    })
}

fn f(doc: &Value, key: &str) -> Option<f64> {
    doc.get(key).and_then(Value::as_f64)
}

/// The tracked metrics of one result file: name → ns/tuple.
fn metrics(kind: &str, doc: &Value) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    match kind {
        "obs" => {
            for (list, prefix) in [("postures", "obs"), ("violation_postures", "viol")] {
                for p in doc.get(list).and_then(Value::as_array).unwrap_or(&[]) {
                    if let (Some(cfg), Some(v)) =
                        (p.get("config").and_then(Value::as_str), f(p, "ns_per_tuple"))
                    {
                        out.insert(format!("{prefix}:{cfg}"), v);
                    }
                }
            }
        }
        "scaling" => {
            for r in doc.get("rows").and_then(Value::as_array).unwrap_or(&[]) {
                if let (Some(mode), Some(shards), Some(v)) = (
                    r.get("mode").and_then(Value::as_str),
                    r.get("shards").and_then(Value::as_u64),
                    f(r, "ns_per_tuple"),
                ) {
                    out.insert(format!("scaling:{mode}/{shards}"), v);
                }
            }
        }
        _ => usage(),
    }
    if out.is_empty() {
        eprintln!("bench_diff: no `{kind}` metrics found — wrong kind or schema drift?");
        exit(2);
    }
    out
}

/// Workload identity: comparing ns/tuple across different workloads is
/// meaningless, so these must match exactly between baseline and fresh.
fn workload_params(kind: &str, doc: &Value) -> Vec<(&'static str, f64)> {
    let keys: &[&'static str] = match kind {
        "obs" => &["tuples_per_rep", "viol_tuples_per_rep"],
        "scaling" => &["tuples", "symbols"],
        _ => usage(),
    };
    keys.iter().filter_map(|k| f(doc, k).map(|v| (*k, v))).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, kind, fresh_path) = match args.as_slice() {
        [m, k, f, ..] if args.len() <= 4 => (m.as_str(), k.as_str(), f.as_str()),
        _ => usage(),
    };
    let baseline_path = args.get(3).cloned().unwrap_or_else(|| {
        let name = match kind {
            "obs" => "BENCH_obs.json",
            "scaling" => "BENCH_scaling_smoke.json",
            _ => usage(),
        };
        format!("{}/../../scripts/baselines/{name}", env!("CARGO_MANIFEST_DIR"))
    });

    let fresh = load(fresh_path);
    let fresh_metrics = metrics(kind, &fresh);

    let seed = |reason: &str| -> ! {
        if let Some(dir) = std::path::Path::new(&baseline_path).parent() {
            std::fs::create_dir_all(dir).expect("create baseline dir");
        }
        std::fs::copy(fresh_path, &baseline_path).expect("write baseline");
        println!("bench_diff: {reason} — recorded {fresh_path} as {baseline_path}");
        exit(0);
    };

    if mode == "record" {
        seed("record requested");
    }
    if mode != "check" {
        usage();
    }
    if !std::path::Path::new(&baseline_path).exists() {
        seed("no baseline yet");
    }

    let base = load(&baseline_path);
    if workload_params(kind, &base) != workload_params(kind, &fresh) {
        eprintln!(
            "bench_diff: workload parameters differ between {baseline_path} and {fresh_path} \
             ({:?} vs {:?}) — numbers are not comparable; re-record with \
             `bench_diff record {kind} {fresh_path}`",
            workload_params(kind, &base),
            workload_params(kind, &fresh),
        );
        exit(1);
    }
    let base_metrics = metrics(kind, &base);

    let band = env_f64("PULSE_BENCH_BAND_PCT", 50.0);
    let mut regressions = Vec::new();
    println!("bench_diff: {kind} trajectory vs {baseline_path} (band ±{band}%)");
    println!("{:<28} {:>12} {:>12} {:>9}", "metric", "baseline", "fresh", "delta");
    for (name, b) in &base_metrics {
        let Some(v) = fresh_metrics.get(name) else {
            regressions.push(format!("{name}: present in baseline, missing from fresh run"));
            println!("{name:<28} {b:>12.1} {:>12} {:>9}", "-", "MISSING");
            continue;
        };
        let delta = (v - b) / b * 100.0;
        let verdict = if delta > band {
            regressions.push(format!("{name}: {b:.1} -> {v:.1} ns/tuple ({delta:+.1}%)"));
            "REGRESSION"
        } else if delta < -band {
            "improved — consider re-recording"
        } else {
            ""
        };
        println!("{name:<28} {b:>12.1} {v:>12.1} {delta:>+8.1}% {verdict}");
    }
    for name in fresh_metrics.keys().filter(|n| !base_metrics.contains_key(*n)) {
        println!("{name:<28} {:>12} {:>12.1}   (new, no baseline)", "-", fresh_metrics[name]);
    }

    if regressions.is_empty() {
        println!("bench_diff: OK — {} metrics within band", base_metrics.len());
    } else {
        eprintln!("bench_diff: FAILED — {} metric(s) beyond the ±{band}% band:", regressions.len());
        for r in &regressions {
            eprintln!("  {r}");
        }
        exit(1);
    }
}
